"""Tests for the analysis daemon (`repro.service`).

The two contracts under test:

- **Byte-identity** — daemon results (cold, warm, and post-edit) carry
  exactly the ``reports``/``diagnostics`` one-shot ``repro check
  --json`` emits for the same program, across hash seeds and ``--jobs``.
- **Overload degrades, never crashes** — a full admission queue answers
  429 + ``Retry-After`` while accepted jobs and the daemon itself keep
  working; bad inputs fail the one job, not the process.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import (
    LoadConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceServer,
    run_load,
)

SOURCE = """
fn use_after_free(n) {
    p = malloc();
    if (n > 3) {
        free(p);
    }
    if (n > 4) {
        x = *p;
        return x;
    }
    return 0;
}

fn helper(p, n) {
    if (n > 0) {
        free(p);
    }
    return n;
}

fn caller(n) {
    q = malloc();
    m = helper(q, n);
    if (m > 1) {
        y = *q;
        return y;
    }
    return m;
}

fn knob() {
    return 0;
}
"""

KNOB_EDIT = "fn knob() { return 41; }"


def _one_shot(tmp_path, source, *, seed="0", jobs=None, name="subject.pin"):
    """`repro check --json --all` in a subprocess; returns the document."""
    path = tmp_path / name
    path.write_text(source)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    env["PYTHONHASHSEED"] = seed
    env.pop("REPRO_CACHE_DIR", None)
    env.pop("REPRO_JOBS", None)
    argv = [sys.executable, "-m", "repro", "check", str(path), "--all", "--json"]
    if jobs:
        argv += ["--jobs", str(jobs)]
    proc = subprocess.run(argv, capture_output=True, text=True, env=env)
    return json.loads(proc.stdout)


def _canon(document):
    return json.dumps(
        {
            "reports": document["reports"],
            "diagnostics": document["diagnostics"],
        },
        sort_keys=True,
    )


@pytest.fixture
def server():
    with ServiceServer(ServiceConfig(workers=2)) as srv:
        yield srv


def test_cold_warm_edit_byte_identical_to_one_shot(server, tmp_path):
    client = ServiceClient(server.port)

    cold = client.check(SOURCE, session="s1")
    warm = client.check(SOURCE, session="s1")
    assert cold["kind"] == "cold" and warm["kind"] == "warm"
    assert cold["findings"] > 0
    assert _canon(cold) == _canon(warm)
    # Warm re-check of the identical program re-analyzes nothing.
    assert warm["incremental"]["analyzed"] == 0
    assert warm["incremental"]["reused"] == warm["incremental"]["functions"]

    # One-shot reference, across hash seeds and a parallel prepare.
    for seed, jobs in (("0", None), ("1", None), ("4242", 2)):
        reference = _one_shot(tmp_path, SOURCE, seed=seed, jobs=jobs)
        assert _canon(cold) == _canon(reference)

    # Single-function edit: analyzed exactly the edited function, and
    # the result is byte-identical to a one-shot of the edited program.
    edited = client.edit("s1", KNOB_EDIT)
    assert edited["kind"] == "edit"
    assert edited["incremental"]["analyzed"] == 1
    edited_source = SOURCE.replace("fn knob() {\n    return 0;\n}", KNOB_EDIT)
    assert KNOB_EDIT in edited_source
    for seed, jobs in (("0", None), ("7", 2)):
        reference = _one_shot(
            tmp_path, edited_source, seed=seed, jobs=jobs, name="edited.pin"
        )
        assert _canon(edited) == _canon(reference)


def test_results_endpoint_and_no_wait_flow(server):
    client = ServiceClient(server.port)
    accepted = client.check(SOURCE, session="poll", wait=False)
    # Either still pending (202 -> job doc) or already finished.
    job_id = accepted["job_id"]
    result = client.wait_result(job_id)
    assert result["status"] == "done"
    assert result["job_id"] == job_id
    assert result["findings"] > 0
    assert "timings" in result
    # /v1/jobs always answers with the job document.
    job = client.job(job_id)
    assert job["status"] == "done"


def test_edit_against_unknown_session_is_404(server):
    client = ServiceClient(server.port)
    with pytest.raises(ServiceError) as excinfo:
        client.edit("never-checked", KNOB_EDIT)
    assert excinfo.value.status == 404


def test_edit_of_unknown_function_is_404(server):
    client = ServiceClient(server.port)
    client.check(SOURCE, session="s404")
    with pytest.raises(ServiceError) as excinfo:
        client.edit("s404", "fn brand_new() { return 1; }")
    assert excinfo.value.status == 404


def test_parse_error_fails_the_job_not_the_daemon(server):
    client = ServiceClient(server.port)
    accepted = client.check("fn broken( {", session="bad", wait=True)
    assert accepted["status"] == "failed"
    assert "parse error" in accepted["error"]
    # Daemon is still healthy and still serves good requests.
    assert client.health()["ok"] is True
    good = client.check(SOURCE, session="bad2")
    assert good["status"] == "done"


def test_overload_answers_429_with_retry_after_and_recovers():
    config = ServiceConfig(
        workers=1, queue_max=2, worker_delay_seconds=0.4
    )
    with ServiceServer(config) as server:
        client = ServiceClient(server.port)
        accepted, rejected = [], []
        for index in range(8):
            try:
                accepted.append(
                    client.check(
                        SOURCE, session=f"ov-{index}", wait=False
                    )["job_id"]
                )
            except ServiceError as exc:
                rejected.append(exc)
        assert rejected, "queue of 2 with 8 instant submits must reject"
        for exc in rejected:
            assert exc.overloaded
            assert exc.retry_after >= 1
            assert "queue_depth" in exc.payload
        # Accepted jobs all reach a terminal state; daemon stays up.
        for job_id in accepted:
            result = client.wait_result(job_id, timeout=60)
            assert result["status"] == "done"
        health = client.health()
        assert health["ok"] is True
        assert health["jobs"]["done"] == len(accepted)
        # The rejections are visible as metrics.
        metrics = client.metrics_text()
        assert "service_rejected" in metrics
        assert "service_queue_depth" in metrics


def test_healthz_names_port_queue_and_jobs(server):
    client = ServiceClient(server.port)
    health = client.health()
    assert health["ok"] is True
    assert health["service"] == "repro-daemon"
    assert health["port"] == server.port
    assert health["queue_max"] == server.config.queue_max
    assert {"queue_depth", "sessions", "jobs", "uptime_seconds"} <= set(health)


def test_session_cache_evicts_least_recently_used():
    with ServiceServer(ServiceConfig(workers=1, max_sessions=2)) as server:
        client = ServiceClient(server.port)
        for name in ("lru-a", "lru-b", "lru-c"):
            client.check(SOURCE, session=name)
        names = {s["name"] for s in client.sessions()}
        assert len(names) == 2
        assert "lru-a" not in names  # oldest evicted
        # The evicted session just means the next check is cold again.
        revived = client.check(SOURCE, session="lru-a")
        assert revived["kind"] == "cold"


def test_loadgen_measures_and_preserves_fingerprints():
    with ServiceServer(ServiceConfig(workers=2)) as server:
        report = run_load(
            server.port,
            LoadConfig(clients=2, edits_per_client=2, target_lines=120),
        )
        assert not report.errors
        summary = report.summary()
        assert summary["kinds"]["cold"]["count"] == 2
        assert summary["kinds"]["edit"]["count"] == 4
        # Each client's warm fingerprint matches its cold fingerprint
        # (same program), and edits change it.
        by_kind = {}
        for sample in report.samples:
            by_kind.setdefault(sample["kind"], []).append(sample)
        cold_fps = {s["fingerprint"] for s in by_kind["cold"]}
        warm_fps = {s["fingerprint"] for s in by_kind["warm"]}
        assert cold_fps == warm_fps
        assert all(s["exit_code"] in (0, 1) for s in report.samples)


def test_job_carries_trace_context_from_tracing_client():
    from repro.obs.trace import Tracer, get_tracer, set_tracer

    old = get_tracer()
    try:
        tracer = set_tracer(Tracer(enabled=True, trace_id="feedbeef12345678"))
        with ServiceServer(ServiceConfig(workers=1)) as server:
            client = ServiceClient(server.port)
            with tracer.span("client.request") as outer:
                outer_uid = outer.uid
                done = client.check(SOURCE, session="traced", wait=True)
            # The job document carries the client's trace id, and the
            # daemon recorded a service.job span parented (by args) on
            # the client's open request span.
            job = client.job(done["job_id"])
            assert job["trace_id"] == "feedbeef12345678"
            service_spans = [
                s for s in tracer.spans if s.name == "service.job"
            ]
            assert service_spans, "daemon must record a service.job span"
            span = service_spans[0]
            assert span.args["trace_id"] == "feedbeef12345678"
            assert span.args["parent_span"] == outer_uid
            assert span.args["job_id"] == done["job_id"]
    finally:
        set_tracer(old)


def test_job_without_client_trace_mints_trace_id():
    with ServiceServer(ServiceConfig(workers=1)) as server:
        client = ServiceClient(server.port)
        done = client.check(SOURCE, session="untraced", wait=True)
        job = client.job(done["job_id"])
        assert len(job["trace_id"]) == 16  # minted at accept time


def test_metrics_expose_dispatch_and_attr_series_during_parallel_run():
    """The daemon's /metrics surface serves the process registry, so a
    ``--jobs 2`` run in flight in the same process exposes its
    ``sched.dispatch.*`` and ``attr.*`` series live."""
    import threading

    from repro import Pinpoint, UseAfterFreeChecker
    from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

    old_registry = get_registry()
    set_registry(MetricsRegistry())
    release = threading.Event()
    prepared = threading.Event()
    failure = []

    def run_parallel():
        try:
            engine = Pinpoint.from_source(SOURCE, jobs=2)
            engine.check(UseAfterFreeChecker())
            prepared.set()
            # Hold the run "open" until the poller has seen the series:
            # the assertion below happens while this thread is live.
            release.wait(timeout=30)
        except Exception as exc:  # pragma: no cover - surfaced below
            failure.append(exc)
            prepared.set()

    try:
        with ServiceServer(ServiceConfig(workers=1)) as server:
            client = ServiceClient(server.port)
            worker = threading.Thread(target=run_parallel)
            worker.start()
            try:
                assert prepared.wait(timeout=60)
                assert not failure, failure
                deadline = time.monotonic() + 30
                needed = (
                    "repro_sched_dispatch_serialize_bytes_total",
                    "repro_sched_dispatch_serialize_seconds_total",
                    "repro_attr_critical_path_seconds",
                    "repro_attr_overhead_ratio",
                    "repro_attr_utilization",
                )
                while True:
                    text = client.metrics_text()
                    if all(series in text for series in needed):
                        break
                    assert time.monotonic() < deadline, (
                        f"missing series in /metrics: "
                        f"{[s for s in needed if s not in text]}"
                    )
                    time.sleep(0.05)
                assert worker.is_alive(), "run must still be in flight"
            finally:
                release.set()
                worker.join(timeout=30)
    finally:
        set_registry(old_registry)


def test_daemon_cli_announces_ephemeral_port_and_stops_on_sigterm(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "daemon", "--port", "0", "--workers", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline().strip()
        assert "listening on http://127.0.0.1:" in line
        port = int(line.rsplit(":", 1)[1])
        client = ServiceClient(port)
        deadline = time.monotonic() + 30
        while True:
            try:
                health = client.health()
                break
            except OSError:
                assert time.monotonic() < deadline
                time.sleep(0.05)
        assert health["port"] == port
        result = client.check(SOURCE, session="cli")
        assert result["status"] == "done" and result["findings"] > 0
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        assert proc.returncode == 0
        tail = proc.stdout.read()
        assert "[daemon] stopped" in tail
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
