"""CFG shape edge cases: returns inside loops, constant conditions,
unreachable code, degenerate functions."""

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.lang.interp import run_function


def check_uaf(source: str):
    return Pinpoint.from_source(source).check(UseAfterFreeChecker())


def test_return_inside_loop_body():
    assert len(check_uaf("fn f(c) { while (c > 0) { return 1; } return 0; }")) == 0


def test_constant_true_loop():
    assert len(check_uaf("fn f() { while (true) { x = 1; } return 0; }")) == 0


def test_conditional_return_inside_loop():
    source = """
    fn f(c) {
        while (c > 0) {
            if (c > 5) { return 9; }
            c = c - 1;
        }
        return 0;
    }
    """
    assert len(check_uaf(source)) == 0
    interp = run_function(source, "f", 7)
    assert not interp.violations


def test_constant_condition_branch():
    assert len(check_uaf("fn f(c) { if (true) { return 1; } else { return 2; } }")) == 0


def test_uaf_inside_infinite_loop_found():
    result = check_uaf(
        "fn f() { p = malloc(); while (true) { free(p); x = *p; return x; } return 0; }"
    )
    assert len(result) == 1


def test_loop_with_break_via_condition():
    source = """
    fn f(n) {
        i = 0;
        done = 0;
        while (done == 0) {
            i = i + 1;
            if (i >= n) { done = 1; }
        }
        return i;
    }
    """
    assert len(check_uaf(source)) == 0
    interp = run_function(source, "f", 4)
    assert not interp.violations


def test_free_then_return_before_use():
    # The use is on a path the return cuts off.
    result = check_uaf(
        """
        fn f(c) {
            p = malloc();
            free(p);
            return 0;
            x = *p;
            return x;
        }
        """
    )
    assert len(result) == 0  # dead code after return is dropped


def test_empty_then_branch():
    assert len(check_uaf("fn f(c) { if (c > 0) { } return 0; }")) == 0


def test_both_arms_return_no_join():
    result = check_uaf(
        """
        fn f(c) {
            p = malloc();
            if (c > 0) { free(p); return 0; }
            else { x = *p; return x; }
        }
        """
    )
    assert len(result) == 0  # free and use on exclusive arms


def test_sequential_loops():
    source = """
    fn f(n) {
        i = 0;
        while (i < n) { i = i + 1; }
        j = 0;
        while (j < n) { j = j + 1; }
        return i + j;
    }
    """
    assert len(check_uaf(source)) == 0


def test_loop_condition_uses_heap():
    source = """
    fn f(n) {
        counter = malloc();
        *counter = 0;
        v = *counter;
        while (v < n) {
            v = v + 1;
            *counter = v;
        }
        free(counter);
        return 0;
    }
    """
    assert len(check_uaf(source)) == 0
