"""The malformed-program corpus: quarantine, never a traceback.

Every file under ``tests/corpus/`` is deliberately broken in some way
(truncation, alien tokens, stray top-level text, unbalanced braces,
pathological nesting).  The analysis must quarantine the broken parts,
analyze the survivors, and report what it skipped — the CLI may exit 0,
1, or 3, but never crash with exit 2's traceback path.
"""

import glob
import os

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.cli import main
from repro.core.report import CheckResult
from repro.robust.diagnostics import STAGE_PARSE

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.pin")))


def _read(path):
    with open(path, "r") as handle:
        return handle.read()


def test_corpus_is_populated():
    assert len(CORPUS) >= 5


@pytest.mark.parametrize("path", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
def test_engine_survives_with_diagnostics(path):
    engine = Pinpoint.from_source(_read(path), recover=True)
    result = engine.check(UseAfterFreeChecker())
    assert isinstance(result, CheckResult)
    # Every corpus file is broken somewhere: the breakage must surface
    # as structured diagnostics, not be silently dropped.
    assert result.diagnostics
    assert result.degraded
    for diag in result.diagnostics:
        assert diag.unit  # diagnostics name the quarantined unit
        assert diag.stage
        assert diag.reason


@pytest.mark.parametrize("path", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
def test_cli_never_tracebacks(path, capsys):
    code = main(["check", path, "--all"])
    captured = capsys.readouterr()
    assert code in (0, 1, 3)
    assert "Traceback" not in captured.out
    assert "Traceback" not in captured.err


def test_truncated_survivors_still_analyzed():
    path = os.path.join(CORPUS_DIR, "truncated.pin")
    engine = Pinpoint.from_source(_read(path), recover=True)
    result = engine.check(UseAfterFreeChecker())
    # 'truncated' is quarantined at parse; 'buggy' still yields its UAF.
    parse_units = {d.unit for d in result.diagnostics if d.stage == STAGE_PARSE}
    assert "truncated" in parse_units
    reported = {r.sink.function for r in result.reports}
    assert "buggy" in reported


def test_bad_tokens_only_mangled_lost():
    path = os.path.join(CORPUS_DIR, "bad_tokens.pin")
    engine = Pinpoint.from_source(_read(path), recover=True)
    result = engine.check(UseAfterFreeChecker())
    assert "also_ok" in {r.sink.function for r in result.reports}
    assert "mangled" in {d.unit for d in result.diagnostics}


def test_deep_nesting_is_quarantined_not_fatal():
    path = os.path.join(CORPUS_DIR, "deep_nesting.pin")
    engine = Pinpoint.from_source(_read(path), recover=True)
    result = engine.check(UseAfterFreeChecker())
    assert "abyss" in {d.unit for d in result.diagnostics}
    assert "after" in {r.sink.function for r in result.reports}


def test_strict_mode_still_raises_on_corpus():
    from repro.lang.parser import ParseError, parse_program

    path = os.path.join(CORPUS_DIR, "unbalanced.pin")
    with pytest.raises(ParseError):
        parse_program(_read(path))
