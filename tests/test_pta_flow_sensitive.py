"""The flow-sensitive points-to tier (``--pta=fs``).

Covers the tier end to end: must-alias-proven strong updates remove the
null-branch false positive, kill-then-branch shapes, loop-carried
pointers and loop-allocated objects refuse the singleton proof, aliased
stores through phis stay weak, escalation reproduces the fi findings
byte-for-byte when fs adds nothing, fs points-to stays a subset of fi,
the cache keys of the two tiers never collide, and reports are
deterministic across ``--jobs`` and hash seeds.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.cache.keys import prepare_cache_key
from repro.core.checkers import UseAfterFreeChecker
from repro.core.engine import EngineConfig, Pinpoint
from repro.core.pipeline import prepare_source
from repro.ir import cfg
from repro.lang.parser import parse_program
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.pta.flowsense import FlowSensitivePTA, resolve_pta_tier
from repro.pta.memory import MustAlias
from repro.synth.precision import generate_precision_suite, suite_source
from repro.verify import verify_flow_tier


@pytest.fixture(autouse=True)
def _fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


def _case(name: str):
    return next(c for c in generate_precision_suite() if c.name == name)


def _reports(source: str, tier: str):
    engine = Pinpoint.from_source(
        source, EngineConfig(pta_tier=tier, verify="fast")
    )
    result = engine.check(UseAfterFreeChecker())
    assert not engine.diagnostics.entries
    return engine, result


def _flow(source: str, name: str):
    prepared = prepare_source(source).functions[name]
    return FlowSensitivePTA(prepared.function).run()


# ----------------------------------------------------------------- kills
def test_strong_update_removes_null_branch_fp():
    source = _case("fp_null_branch").source
    _, fi = _reports(source, "fi")
    engine, fs = _reports(source, "fs")
    assert len(fi.reports) == 1
    assert not fs.reports
    prepared = engine.functions["fp_null_branch"].prepared
    assert prepared.pta_tier == "fs"
    assert prepared.points_to.strong_uids  # the kill was proof-driven
    assert fs.stats.escalated_functions == 1


def test_kill_then_branch():
    source = _case("fp_kill_then_branch").source
    _, fi = _reports(source, "fi")
    _, fs = _reports(source, "fs")
    assert len(fi.reports) == 1
    assert not fs.reports


def test_must_alias_proof_backs_each_kill():
    source = _case("fp_null_branch").source
    flow = _flow(source, "fp_null_branch")
    assert flow.proofs, "the kill store must carry a must-alias proof"
    for proof in flow.proofs.values():
        assert proof.reason in ("singleton-alloc", "singleton-aux")
        target = flow.must_target(
            _store_pointer(source, "fp_null_branch", proof.store_uid)
        )
        assert target == MustAlias.singleton(proof.obj)


def _store_pointer(source: str, func: str, uid: int) -> str:
    function = prepare_source(source).functions[func].function
    for instr in function.all_instrs():
        if isinstance(instr, cfg.Store) and instr.uid == uid:
            return instr.pointer.name
    raise AssertionError(f"no store with uid {uid}")


# ------------------------------------------------- proof refusal shapes
def test_aliased_store_through_phi_stays_weak():
    source = _case("bug_phi_two_objects").source
    flow = _flow(source, "bug_phi_two_objects")
    # The kill pointer may alias two distinct allocations: must-alias
    # joins to top, the kill store gets no proof (the straight-line
    # setup stores legitimately keep theirs), and the report survives
    # both tiers.
    kill = _last_store(source, "bug_phi_two_objects")
    assert kill.uid not in flow.proofs
    assert flow.must_target(kill.pointer.name).is_singleton is False
    _, fi = _reports(source, "fi")
    _, fs = _reports(source, "fs")
    assert fi.reports and fs.reports


def _last_store(source: str, func: str) -> cfg.Store:
    function = prepare_source(source).functions[func].function
    stores = [i for i in function.all_instrs() if isinstance(i, cfg.Store)]
    assert stores
    return stores[-1]


def test_loop_alloc_singularity_refused():
    source = _case("fp_loop_alloc_kept").source
    flow = _flow(source, "fp_loop_alloc_kept")
    assert flow.cyclic_alloc_sites  # the loop allocation was detected
    assert not flow.proofs  # ... and disqualifies the proof
    _, fi = _reports(source, "fi")
    _, fs = _reports(source, "fs")
    assert len(fi.reports) == 1
    assert len(fs.reports) == 1  # kept: one abstract cell, many concrete


def test_loop_carried_pointer_is_top():
    # p's def-use chain cycles through the loop phi; must-alias must
    # over-approximate to top rather than claim a singleton.
    source = """
fn loop_carried(c) {
    p = malloc();
    i = 0;
    while (i < c) {
        q = *p;
        p = q;
        i = i + 1;
    }
    v = malloc();
    *p = v;
    return 0;
}
"""
    flow = _flow(source, "loop_carried")
    assert not flow.proofs
    function = prepare_source(source).functions["loop_carried"].function
    stores = [i for i in function.all_instrs() if isinstance(i, cfg.Store)]
    assert stores
    assert flow.must_target(stores[-1].pointer.name).is_singleton is False


# ----------------------------------------------------- escalation exact
def test_escalation_reproduces_fi_findings_when_fs_adds_nothing():
    # Only genuine bugs: fs must re-confirm every fi report unchanged.
    bugs = [c for c in generate_precision_suite() if c.is_bug]
    source = suite_source(bugs)
    _, fi = _reports(source, "fi")
    _, fs = _reports(source, "fs")
    assert fs.reports == fi.reports
    # Byte-identical rendering, not just structural equality.
    assert "\n".join(map(str, fs.reports)) == "\n".join(map(str, fi.reports))


# ------------------------------------------------------------- subset
def test_fs_points_to_subset_of_fi():
    source = suite_source(generate_precision_suite())
    fi_module = prepare_source(source, pta_tier="fi")
    fs_module = prepare_source(source, pta_tier="fs")
    for name, fs_prepared in fs_module.functions.items():
        fi_prepared = fi_module.functions[name]
        violations = verify_flow_tier(fs_prepared, fi_prepared)
        assert not violations, [v.detail for v in violations]
        fi_pts = fi_prepared.points_to.points_to
        for var, cells in fs_prepared.points_to.points_to.items():
            fs_objs = {obj for obj, _ in cells}
            fi_objs = {obj for obj, _ in fi_pts.get(var, ())}
            assert fs_objs <= fi_objs, (name, var)


def test_verifier_flags_unjustified_strong_update():
    source = _case("bug_phi_two_objects").source
    fi_prepared = prepare_source(source, pta_tier="fi").functions[
        "bug_phi_two_objects"
    ]
    fs_prepared = prepare_source(source, pta_tier="fs").functions[
        "bug_phi_two_objects"
    ]
    assert not verify_flow_tier(fs_prepared, fi_prepared)
    # Forge a strong update with no backing proof: the verifier must
    # call it out as an error-severity violation.  Pick the kill store,
    # the one store flowsense could not prove.
    proven = set(fs_prepared.flow.proofs)
    store_uid = next(
        uid for uid in fs_prepared.points_to.store_targets
        if uid not in proven
    )
    fs_prepared.points_to.strong_uids = (store_uid,)
    violations = verify_flow_tier(fs_prepared, fi_prepared)
    assert any(v.rule == "pta-strong-update-proof" for v in violations)


# ----------------------------------------------------------- plumbing
def test_cache_keys_differ_by_tier():
    program = parse_program(_case("bug_direct_uaf").source)
    func_ast = program.functions[0]
    fi_key = prepare_cache_key(func_ast, {}, [], pta_tier="fi")
    fs_key = prepare_cache_key(func_ast, {}, [], pta_tier="fs")
    assert fi_key != fs_key
    assert prepare_cache_key(func_ast, {}, [], pta_tier="fs") == fs_key


def test_resolve_pta_tier():
    assert resolve_pta_tier() == "fi"
    assert resolve_pta_tier("fs") == "fs"
    os.environ["REPRO_PTA"] = "fs"
    try:
        assert resolve_pta_tier() == "fs"
        assert resolve_pta_tier("fi") == "fi"  # explicit wins
    finally:
        del os.environ["REPRO_PTA"]
    with pytest.raises(ValueError):
        resolve_pta_tier("sparse")


def test_engine_config_rejects_unknown_tier():
    with pytest.raises(ValueError):
        EngineConfig(pta_tier="cs")


def test_stats_surface_tier_and_counters():
    source = suite_source(generate_precision_suite())
    _, fs = _reports(source, "fs")
    stats = fs.stats.as_dict()
    assert stats["pta_tier"] == "fs"
    assert stats["strong_updates"] > 0
    assert stats["escalated_functions"] > 0
    _, fi = _reports(source, "fi")
    assert fi.stats.as_dict()["pta_tier"] == "fi"
    assert fi.stats.as_dict()["escalated_functions"] == 0


def test_history_record_carries_pta_section():
    from repro.obs.history import collect_run_record
    from repro.obs.metrics import get_registry

    source = suite_source(generate_precision_suite())
    engine, _ = _reports(source, "fs")
    record = collect_run_record(
        get_registry(),
        command="check",
        label="t",
        fingerprint="f",
        config={"pta": engine.pta_tier},
        wall_seconds=0.0,
    )
    assert record["pta"]["tier"] == "fs"
    assert record["pta"]["strong_updates"] > 0
    assert record["pta"]["escalations"] > 0


# -------------------------------------------------------- determinism
def _json_check(path, capsys, *flags):
    from repro.cli import main

    set_registry(MetricsRegistry())
    code = main(["check", path, "--all", "--json", *flags])
    document = json.loads(capsys.readouterr().out)
    stats = {
        checker: {
            key: value
            for key, value in per_checker.items()
            if not key.startswith("seconds_")
        }
        for checker, per_checker in document["stats"].items()
    }
    return code, {
        "reports": document["reports"],
        "diagnostics": document["diagnostics"],
        "stats": stats,
    }


@pytest.mark.parametrize("tier", ["fi", "fs"])
def test_reports_identical_across_jobs_and_cache(tier, tmp_path, capsys):
    path = tmp_path / "precision.pin"
    path.write_text(suite_source(generate_precision_suite()))
    cache_dir = str(tmp_path / "cache")
    serial = _json_check(str(path), capsys, "--pta", tier, "--jobs", "1")
    two = _json_check(str(path), capsys, "--pta", tier, "--jobs", "2")
    four = _json_check(str(path), capsys, "--pta", tier, "--jobs", "4")
    cold = _json_check(
        str(path), capsys, "--pta", tier, "--cache-dir", cache_dir
    )
    warm = _json_check(
        str(path), capsys, "--pta", tier, "--cache-dir", cache_dir,
        "--jobs", "4",
    )
    assert two == serial
    assert four == serial
    assert cold == serial
    assert warm == serial


def test_fi_fs_cache_artifacts_do_not_collide(tmp_path, capsys):
    # One shared cache directory, both tiers: each must produce its own
    # findings — a tier-blind cache key would replay fi artifacts as fs.
    path = tmp_path / "precision.pin"
    path.write_text(suite_source(generate_precision_suite()))
    cache_dir = str(tmp_path / "cache")
    _, fi_cold = _json_check(str(path), capsys, "--cache-dir", cache_dir)
    _, fs_cold = _json_check(
        str(path), capsys, "--pta", "fs", "--cache-dir", cache_dir
    )
    _, fi_warm = _json_check(str(path), capsys, "--cache-dir", cache_dir)
    _, fs_warm = _json_check(
        str(path), capsys, "--pta", "fs", "--cache-dir", cache_dir
    )
    assert fi_warm == fi_cold
    assert fs_warm == fs_cold
    assert len(fs_cold["reports"]) < len(fi_cold["reports"])


def test_reports_identical_across_hash_seeds(tmp_path):
    path = tmp_path / "precision.pin"
    path.write_text(suite_source(generate_precision_suite()))
    env_base = dict(os.environ)
    env_base["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env_base.get("PYTHONPATH", "").split(os.pathsep)
    )
    outputs = []
    for seed in ("0", "1", "4242"):
        env = dict(env_base, PYTHONHASHSEED=seed)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "check", str(path),
                "--all", "--json", "--pta", "fs",
            ],
            capture_output=True, text=True, env=env,
        )
        document = json.loads(proc.stdout)
        outputs.append(
            json.dumps(
                {
                    "reports": document["reports"],
                    "diagnostics": document["diagnostics"],
                },
                sort_keys=True,
            )
        )
    assert outputs[0] == outputs[1] == outputs[2]
