"""Structured logging: field rendering, JSON mode, idempotent configure."""

import io
import json
import logging

import pytest

from repro.obs.log import ROOT_NAME, configure, get_logger


@pytest.fixture(autouse=True)
def reset_root_logger():
    root = logging.getLogger(ROOT_NAME)
    saved_handlers = list(root.handlers)
    saved_level = root.level
    yield
    for handler in list(root.handlers):
        root.removeHandler(handler)
    for handler in saved_handlers:
        root.addHandler(handler)
    root.setLevel(saved_level)


def capture(level="info", json_mode=False):
    stream = io.StringIO()
    configure(level=level, json_mode=json_mode, stream=stream)
    return stream


def test_text_mode_renders_fields():
    stream = capture()
    get_logger("pipeline").info("module prepared", functions=3, quarantined=1)
    line = stream.getvalue().strip()
    assert "[repro.pipeline]" in line
    assert "module prepared" in line
    assert "(functions=3 quarantined=1)" in line


def test_json_mode_emits_one_object_per_line():
    stream = capture(json_mode=True)
    log = get_logger("smt")
    log.info("query", result="sat")
    log.warning("slow", seconds=2.5)
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["logger"] == "repro.smt"
    assert first["message"] == "query"
    assert first["result"] == "sat"
    assert second["level"] == "warning"
    assert second["seconds"] == 2.5


def test_level_filtering():
    stream = capture(level="warning")
    log = get_logger("x")
    log.info("hidden")
    log.warning("shown")
    assert "hidden" not in stream.getvalue()
    assert "shown" in stream.getvalue()


def test_configure_is_idempotent():
    stream = capture()
    configure(level="info", stream=stream)  # reconfigure, same stream
    get_logger().info("once")
    # One handler -> the message appears exactly once.
    assert stream.getvalue().count("once") == 1
    root = logging.getLogger(ROOT_NAME)
    repro_handlers = [
        h for h in root.handlers if getattr(h, "_repro_handler", False)
    ]
    assert len(repro_handlers) == 1


def test_configure_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure(level="chatty")


def test_get_logger_namespacing():
    assert get_logger("seg")._logger.name == "repro.seg"
    assert get_logger()._logger.name == "repro"
