"""Interface-change invalidation across recursive SCCs.

The cache key scheme (repro.cache.keys) promises:

- a *body-only* edit re-prepares exactly the edited function — callers
  keep their artifacts because the callee's connector signature is
  unchanged;
- an *interface* edit (new Mod/Ref behaviour surfacing as Aux
  params/returns) invalidates the edited function and, transitively,
  every caller whose own signature shifts as a result;
- functions in the same call-graph SCC do not key on each other's
  signatures (recursion is unrolled once), so an interface edit inside
  an SCC invalidates callers *outside* the SCC, not SCC siblings that
  never call the edited function.

Both cache tiers must agree: the in-memory IncrementalAnalyzer and the
on-disk SummaryStore used by the wave scheduler.
"""

import dataclasses

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.cache.store import SummaryStore
from repro.core.incremental import IncrementalAnalyzer
from repro.core.pipeline import prepare_source
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

# `even`/`odd` form a recursive SCC; `even` (not `odd`) calls the leaf.
BASE = """
fn leaf(p) { x = *p; return x + 1; }
fn even(p, n) {
    if (n > 0) { r = odd(p, n - 1); return r; }
    v = leaf(p);
    return v;
}
fn odd(p, n) {
    if (n > 0) { r = even(p, n - 1); return r; }
    return 0;
}
fn main(n) {
    p = malloc();
    e = even(p, n);
    free(p);
    return e;
}
"""

# Body-only: leaf computes a different value, same interface.
BODY_EDIT = BASE.replace("return x + 1;", "return x + 2;")

# Interface: leaf now writes through p — a new Aux param in its
# connector signature.
INTERFACE_EDIT = BASE.replace("x = *p;", "x = *p; *p = 0;")


@pytest.fixture(autouse=True)
def _fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


# ----------------------------------------------------------------------
# In-memory tier
# ----------------------------------------------------------------------
def test_body_edit_in_scc_program_reprepares_only_the_leaf():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    analyzer.analyze(BODY_EDIT)
    assert analyzer.last_stats.analyzed == 1  # just leaf
    assert analyzer.last_stats.reused == 3


def test_interface_edit_invalidates_transitively_but_not_scc_sibling():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    analyzer.analyze(INTERFACE_EDIT)
    # leaf changed; even calls leaf so its artifacts (and, its own
    # signature having shifted, main's) are stale.  odd never calls
    # leaf and does not key on even's same-SCC signature: reused.
    assert analyzer.last_stats.analyzed == 3
    assert analyzer.last_stats.reused == 1


def test_scc_members_do_not_key_on_each_other():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    # A body edit to one SCC member re-prepares only that member.
    edited = BASE.replace("return 0;", "return 0 + 0;")
    analyzer.analyze(edited)
    assert analyzer.last_stats.analyzed == 1  # just odd
    assert analyzer.last_stats.reused == 3


# ----------------------------------------------------------------------
# On-disk tier: a brand-new analyzer warm-starts from the store
# ----------------------------------------------------------------------
def test_disk_store_warm_starts_a_fresh_analyzer(tmp_path):
    store = SummaryStore(str(tmp_path / "cache"))
    IncrementalAnalyzer(store=store).analyze(BASE)
    cold = IncrementalAnalyzer(store=store)
    engine = cold.analyze(BASE)
    assert cold.last_stats.analyzed == 0
    assert cold.last_stats.reused == 4
    assert len(engine.check(UseAfterFreeChecker())) == 0


def test_disk_store_body_edit_invalidates_only_the_leaf(tmp_path):
    store = SummaryStore(str(tmp_path / "cache"))
    IncrementalAnalyzer(store=store).analyze(BASE)
    cold = IncrementalAnalyzer(store=store)
    cold.analyze(BODY_EDIT)
    assert cold.last_stats.analyzed == 1
    assert cold.last_stats.reused == 3


def test_disk_store_interface_edit_invalidates_transitively(tmp_path):
    store = SummaryStore(str(tmp_path / "cache"))
    IncrementalAnalyzer(store=store).analyze(BASE)
    cold = IncrementalAnalyzer(store=store)
    cold.analyze(INTERFACE_EDIT)
    assert cold.last_stats.analyzed == 3  # leaf, even, main
    assert cold.last_stats.reused == 1  # odd


# ----------------------------------------------------------------------
# On-disk tier through the wave scheduler (the --cache-dir path)
# ----------------------------------------------------------------------
def _scheduler_run(source, store):
    set_registry(MetricsRegistry())
    prepare_source(source, store=store)
    registry = get_registry()
    return (
        registry.counter("cache.hits").total(),
        registry.counter("cache.misses").total(),
    )


def test_scheduler_store_warm_run_hits_everything(tmp_path):
    store = SummaryStore(str(tmp_path / "cache"))
    hits, misses = _scheduler_run(BASE, store)
    assert (hits, misses) == (0, 4)
    hits, misses = _scheduler_run(BASE, store)
    assert (hits, misses) == (4, 0)


def test_scheduler_store_body_edit_misses_once(tmp_path):
    store = SummaryStore(str(tmp_path / "cache"))
    _scheduler_run(BASE, store)
    hits, misses = _scheduler_run(BODY_EDIT, store)
    assert (hits, misses) == (3, 1)


def test_scheduler_store_interface_edit_misses_transitively(tmp_path):
    store = SummaryStore(str(tmp_path / "cache"))
    _scheduler_run(BASE, store)
    hits, misses = _scheduler_run(INTERFACE_EDIT, store)
    assert (hits, misses) == (1, 3)


def test_cached_run_reports_match_fresh_run(tmp_path):
    def reports(**kwargs):
        set_registry(MetricsRegistry())
        engine = Pinpoint.from_source(UAF, **kwargs)
        return [
            dataclasses.asdict(r)
            for r in engine.check(UseAfterFreeChecker()).reports
        ]

    UAF = BASE.replace("free(p);\n    return e;", "return e;").replace(
        "e = even(p, n);", "free(p);\n    e = even(p, n);"
    )
    cache_dir = str(tmp_path / "cache")
    fresh = reports()
    cold = reports(cache_dir=cache_dir)
    warm = reports(cache_dir=cache_dir)
    assert cold == fresh
    assert warm == fresh
    assert fresh  # the freed pointer reaches leaf's load: a real report
