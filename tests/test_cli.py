"""Tests for the command-line interface and dot export."""

import json

import pytest

from repro.cli import main

UAF = """
fn main() {
    p = malloc();
    free(p);
    x = *p;
    return x;
}
"""

CLEAN = """
fn main(a) {
    p = malloc();
    *p = a;
    x = *p;
    free(p);
    return x;
}
"""


@pytest.fixture
def uaf_file(tmp_path):
    path = tmp_path / "uaf.pin"
    path.write_text(UAF)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.pin"
    path.write_text(CLEAN)
    return str(path)


def test_check_finds_bug(uaf_file, capsys):
    code = main(["check", uaf_file])
    out = capsys.readouterr().out
    assert code == 1
    assert "use-after-free" in out
    assert "flows to" in out


def test_check_clean_exits_zero(clean_file, capsys):
    code = main(["check", clean_file])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 reports" in out


def test_check_json_output(uaf_file, capsys):
    code = main(["check", uaf_file, "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["reports"]) == 1
    report = payload["reports"][0]
    assert report["checker"] == "use-after-free"
    assert report["source"]["function"] == "main"


def test_check_all_checkers(uaf_file, capsys):
    code = main(["check", uaf_file, "--all"])
    assert code == 1
    out = capsys.readouterr().out
    assert "memory-leak" in out
    assert "null-deref" in out


def test_check_stats_flag(uaf_file, capsys):
    main(["check", uaf_file, "--stats"])
    out = capsys.readouterr().out
    assert "[stats]" in out
    assert "vertices" in out


def test_check_specific_checker(uaf_file, capsys):
    code = main(["check", uaf_file, "--checker", "double-free"])
    assert code == 0  # only one free: no double free


def test_run_detects_violation(uaf_file, capsys):
    code = main(["run", uaf_file])
    assert code == 1
    assert "use-after-free" in capsys.readouterr().out


def test_run_clean(clean_file, capsys):
    code = main(["run", clean_file, "--args", "5"])
    assert code == 0
    assert "no memory-safety violations" in capsys.readouterr().out


def test_dump_seg(uaf_file, capsys):
    code = main(["dump-seg", uaf_file, "--function", "main"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "p.0" in out


def test_dump_seg_missing_function(uaf_file, capsys):
    code = main(["dump-seg", uaf_file, "--function", "nope"])
    assert code == 2


def test_dump_cfg(uaf_file, capsys):
    code = main(["dump-cfg", uaf_file, "--function", "main"])
    assert code == 0
    out = capsys.readouterr().out
    assert "digraph" in out
    assert "entry" in out


def test_generate_to_stdout(capsys):
    code = main(["generate", "--lines", "120", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fn " in out


def test_generate_to_file(tmp_path, capsys):
    target = tmp_path / "gen.pin"
    code = main(["generate", "--lines", "150", "--seed", "3", "-o", str(target)])
    assert code == 0
    assert target.exists()
    assert "wrote" in capsys.readouterr().out
    # The generated file round-trips through the checker.
    assert main(["check", str(target), "--checker", "use-after-free"]) in (0, 1)


def test_check_generated_workload_end_to_end(tmp_path):
    target = tmp_path / "work.pin"
    main(["generate", "--lines", "400", "--seed", "9", "-o", str(target)])
    # Seeded bugs exist at this size, so the checker must exit 1.
    assert main(["check", str(target)]) == 1


def test_path_insensitive_flag(uaf_file):
    assert main(["check", uaf_file, "--no-smt", "--no-linear-filter"]) == 1


def test_baseline_workflow(uaf_file, tmp_path, capsys):
    baseline_path = str(tmp_path / "baseline.json")
    # First run records the finding.
    code = main(["check", uaf_file, "--update-baseline", baseline_path])
    assert code == 1
    capsys.readouterr()
    # Second run with the baseline suppresses it and exits clean.
    code = main(["check", uaf_file, "--baseline", baseline_path])
    assert code == 0
    assert "suppressed 1 known" in capsys.readouterr().out


def test_baseline_missing_file_treated_empty(uaf_file, tmp_path):
    code = main(["check", uaf_file, "--baseline", str(tmp_path / "nope.json")])
    assert code == 1
