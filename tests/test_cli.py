"""Tests for the command-line interface and dot export."""

import json

import pytest

from repro.cli import main

UAF = """
fn main() {
    p = malloc();
    free(p);
    x = *p;
    return x;
}
"""

CLEAN = """
fn main(a) {
    p = malloc();
    *p = a;
    x = *p;
    free(p);
    return x;
}
"""


@pytest.fixture
def uaf_file(tmp_path):
    path = tmp_path / "uaf.pin"
    path.write_text(UAF)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.pin"
    path.write_text(CLEAN)
    return str(path)


def test_check_finds_bug(uaf_file, capsys):
    code = main(["check", uaf_file])
    out = capsys.readouterr().out
    assert code == 1
    assert "use-after-free" in out
    assert "flows to" in out


def test_check_clean_exits_zero(clean_file, capsys):
    code = main(["check", clean_file])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 reports" in out


def test_check_json_output(uaf_file, capsys):
    code = main(["check", uaf_file, "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["reports"]) == 1
    report = payload["reports"][0]
    assert report["checker"] == "use-after-free"
    assert report["source"]["function"] == "main"


def test_check_all_checkers(uaf_file, capsys):
    code = main(["check", uaf_file, "--all"])
    assert code == 1
    out = capsys.readouterr().out
    assert "memory-leak" in out
    assert "null-deref" in out


def test_check_stats_flag(uaf_file, capsys):
    main(["check", uaf_file, "--stats"])
    out = capsys.readouterr().out
    assert "[stats]" in out
    assert "vertices" in out


def test_check_specific_checker(uaf_file, capsys):
    code = main(["check", uaf_file, "--checker", "double-free"])
    assert code == 0  # only one free: no double free


def test_run_detects_violation(uaf_file, capsys):
    code = main(["run", uaf_file])
    assert code == 1
    assert "use-after-free" in capsys.readouterr().out


def test_run_clean(clean_file, capsys):
    code = main(["run", clean_file, "--args", "5"])
    assert code == 0
    assert "no memory-safety violations" in capsys.readouterr().out


def test_dump_seg(uaf_file, capsys):
    code = main(["dump-seg", uaf_file, "--function", "main"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "p.0" in out


def test_dump_seg_missing_function(uaf_file, capsys):
    code = main(["dump-seg", uaf_file, "--function", "nope"])
    assert code == 2


def test_dump_cfg(uaf_file, capsys):
    code = main(["dump-cfg", uaf_file, "--function", "main"])
    assert code == 0
    out = capsys.readouterr().out
    assert "digraph" in out
    assert "entry" in out


def test_generate_to_stdout(capsys):
    code = main(["generate", "--lines", "120", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fn " in out


def test_generate_to_file(tmp_path, capsys):
    target = tmp_path / "gen.pin"
    code = main(["generate", "--lines", "150", "--seed", "3", "-o", str(target)])
    assert code == 0
    assert target.exists()
    assert "wrote" in capsys.readouterr().out
    # The generated file round-trips through the checker.
    assert main(["check", str(target), "--checker", "use-after-free"]) in (0, 1)


def test_check_generated_workload_end_to_end(tmp_path):
    target = tmp_path / "work.pin"
    main(["generate", "--lines", "400", "--seed", "9", "-o", str(target)])
    # Seeded bugs exist at this size, so the checker must exit 1.
    assert main(["check", str(target)]) == 1


def test_path_insensitive_flag(uaf_file):
    assert main(["check", uaf_file, "--no-smt", "--no-linear-filter"]) == 1


def test_baseline_workflow(uaf_file, tmp_path, capsys):
    baseline_path = str(tmp_path / "baseline.json")
    # First run records the finding.
    code = main(["check", uaf_file, "--update-baseline", baseline_path])
    assert code == 1
    capsys.readouterr()
    # Second run with the baseline suppresses it and exits clean.
    code = main(["check", uaf_file, "--baseline", baseline_path])
    assert code == 0
    assert "suppressed 1 known" in capsys.readouterr().out


def test_baseline_missing_file_treated_empty(uaf_file, tmp_path):
    code = main(["check", uaf_file, "--baseline", str(tmp_path / "nope.json")])
    assert code == 1


# ----------------------------------------------------------------------
# Observability flags
# ----------------------------------------------------------------------
def test_check_trace_export_is_valid_chrome_trace(uaf_file, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code = main(["check", uaf_file, "--trace", str(trace_path)])
    assert code == 1
    doc = json.loads(trace_path.read_text())
    events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    names = {e["name"] for e in events}
    # Every pipeline stage shows up as a span.
    assert {"parse", "prepare.fn", "pta.run", "seg.build",
            "summaries.rv", "checker.run", "smt.check"} <= names
    assert all("ts" in e and "dur" in e and "pid" in e for e in events)


def test_check_metrics_export_prometheus(uaf_file, tmp_path, capsys):
    metrics_path = tmp_path / "metrics.prom"
    main(["check", uaf_file, "--metrics-out", str(metrics_path)])
    text = metrics_path.read_text()
    assert "# TYPE repro_smt_queries_total counter" in text
    assert "repro_seg_nodes_total" in text
    assert "repro_engine_reported_total" in text
    assert "repro_smt_solve_seconds_bucket" in text


def test_check_metrics_export_json(uaf_file, tmp_path):
    metrics_path = tmp_path / "metrics.json"
    main(["check", uaf_file, "--metrics-out", str(metrics_path)])
    dump = json.loads(metrics_path.read_text())
    assert "smt.queries" in dump
    assert "engine.reported" in dump


def test_check_json_payload_includes_stats_and_metrics(uaf_file, capsys):
    main(["check", uaf_file, "--json", "--trace", "/dev/null"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["use-after-free"]["reported"] == 1
    assert "smt.queries" in payload["metrics"]
    assert payload["trace"]["spans"] > 0
    assert "smt.check" in payload["trace"]["passes"]


def test_check_sarif_invocation_properties(uaf_file, capsys):
    main(["check", uaf_file, "--sarif"])
    doc = json.loads(capsys.readouterr().out)
    properties = doc["runs"][0]["invocations"][0]["properties"]
    assert properties["stats"]["reported"] == 1
    assert "metrics" in properties


def test_profile_smoke(uaf_file, capsys):
    code = main(["profile", uaf_file, "--top", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "repro profile" in out
    assert "hottest passes" in out
    assert "hottest functions" in out
    assert "smt.check" in out or "checker.fn" in out
    assert "main" in out


def test_profile_json(uaf_file, capsys):
    code = main(["profile", uaf_file, "--json"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["label"] == uaf_file
    assert document["checkers"]
    assert document["reports"] >= 1
    assert document["passes"], "per-pass table missing from --json profile"
    for row in document["passes"]:
        assert {"name", "calls", "total_seconds", "self_seconds"} <= set(row)
    assert document["functions"]


def test_check_stats_quantile_line(uaf_file, capsys):
    main(["check", uaf_file, "--stats"])
    out = capsys.readouterr().out
    assert "[quantiles] smt.solve_seconds" in out
    assert "p50=" in out and "p95=" in out and "p99=" in out


def test_why_slow_smoke(uaf_file, capsys):
    code = main(["why-slow", uaf_file, "--top", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "repro why-slow" in out
    assert "critical path" in out
    assert "hottest functions" in out
    assert "% compute" in out and "% dispatch overhead" in out


def test_why_slow_json_artifact(uaf_file, tmp_path, capsys):
    target = tmp_path / "why.json"
    code = main(["why-slow", uaf_file, "--json", "--out", str(target)])
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(target.read_text())
    assert printed["schema"] == "repro.why_slow/1"
    assert printed["critical_path"], "critical path must be non-empty"
    shares = printed["shares"]
    assert shares["compute"] + shares["dispatch_overhead"] <= 1.0 + 1e-6
    # The artifact is the same document the CLI printed.
    assert written["schema"] == printed["schema"]
    assert written["critical_path"] == printed["critical_path"]


def test_profile_compare_diffs_two_artifacts(uaf_file, tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    main(["profile", uaf_file, "--json"])
    old.write_text(capsys.readouterr().out)
    main(["profile", uaf_file, "--json"])
    new.write_text(capsys.readouterr().out)

    code = main(["profile", "--compare", str(old), str(new)])
    assert code == 0
    out = capsys.readouterr().out
    assert "wall_seconds" in out
    assert "pass " in out  # per-pass delta lines

    code = main(["profile", "--compare", str(old), str(new), "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["old"] and payload["new"]
    assert payload["passes"], "per-pass deltas missing"


def test_profile_compare_accepts_why_slow_artifact(uaf_file, tmp_path, capsys):
    prof = tmp_path / "prof.json"
    why = tmp_path / "why.json"
    main(["profile", uaf_file, "--json"])
    prof.write_text(capsys.readouterr().out)
    main(["why-slow", uaf_file, "--json"])
    why.write_text(capsys.readouterr().out)
    code = main(["profile", "--compare", str(prof), str(why)])
    assert code == 0
    out = capsys.readouterr().out
    assert "wall_seconds" in out


def test_profile_without_file_or_compare_errors(capsys):
    assert main(["profile"]) == 2
    assert "--compare" in capsys.readouterr().err


def test_check_stats_quantiles_absent_without_smt(uaf_file, capsys):
    main(["check", uaf_file, "--stats", "--no-smt"])
    assert "[quantiles]" not in capsys.readouterr().out


def test_obs_state_does_not_leak_between_runs(uaf_file, tmp_path, capsys):
    from repro.obs import get_registry, get_tracer

    main(["check", uaf_file, "--trace", str(tmp_path / "t.json")])
    first = len(get_tracer().spans)
    assert first > 0
    # The next run without --trace gets a fresh, disabled tracer.
    main(["check", uaf_file])
    assert get_tracer().enabled is False
    assert get_tracer().spans == []
    assert get_registry().counter("smt.queries").total() <= first


# ----------------------------------------------------------------------
# Verification: --verify, exit code 4, --dump-on-verify-fail, selfcheck
# ----------------------------------------------------------------------
def test_check_verify_clean_run_keeps_exit_code(clean_file, uaf_file):
    assert main(["check", clean_file, "--verify", "full"]) == 0
    assert main(["check", uaf_file, "--verify", "full"]) == 1


def test_check_verify_failure_exits_four(clean_file, monkeypatch, capsys):
    from repro.verify import Violation

    monkeypatch.setattr(
        "repro.verify.verify_seg",
        lambda seg, prepared: [
            Violation("seg-dangling-edge", prepared.name, "injected")
        ],
    )
    code = main(["check", clean_file, "--verify", "fast"])
    assert code == 4
    out = capsys.readouterr().out
    assert "invariant-violation:seg-dangling-edge" in out


def test_check_dump_on_verify_fail(clean_file, tmp_path, monkeypatch):
    from repro.verify import Violation

    monkeypatch.setattr(
        "repro.verify.verify_seg",
        lambda seg, prepared: [
            Violation("seg-dangling-edge", prepared.name, "injected")
        ],
    )
    dump_dir = tmp_path / "dumps"
    code = main(
        [
            "check",
            clean_file,
            "--verify",
            "fast",
            "--dump-on-verify-fail",
            str(dump_dir),
        ]
    )
    assert code == 4
    dumped = dump_dir / "main.seg.dot"
    assert dumped.exists()
    text = dumped.read_text()
    assert text.startswith("// verify failure dump")
    assert "seg-dangling-edge" in text
    assert "digraph" in text


def test_check_no_dump_dir_without_failures(clean_file, tmp_path):
    dump_dir = tmp_path / "dumps"
    code = main(
        [
            "check",
            clean_file,
            "--verify",
            "full",
            "--dump-on-verify-fail",
            str(dump_dir),
        ]
    )
    assert code == 0
    assert not dump_dir.exists()


def test_help_epilog_documents_exit_codes():
    from repro.cli import build_parser

    text = build_parser().format_help()
    assert "exit codes:" in text
    assert "verification failure" in text
    assert "degraded" in text


def test_selfcheck_end_to_end(tmp_path, capsys):
    out_file = tmp_path / "selfcheck.json"
    code = main(
        ["selfcheck", "--seeds", "3", "--lines", "250", "--out", str(out_file)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "result: PASS" in out
    document = json.loads(out_file.read_text())
    assert document["ok"] is True
    assert all(v == 1.0 for v in document["recall_by_kind"].values())
    assert document["trap_reports"] == 0


def test_selfcheck_json_mode(capsys):
    code = main(
        ["selfcheck", "--seeds", "4", "--lines", "250", "--no-oracle", "--json"]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["oracle"] is False
    assert document["seeds"][0]["seed"] == 4


def test_selfcheck_bad_seed_spec_is_an_error(capsys):
    code = main(["selfcheck", "--seeds", "9..2"])
    assert code == 2
