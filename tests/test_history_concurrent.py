"""Concurrent-appender safety of the history ``runs.jsonl`` log.

The store's write path is one ``write(2)`` on an ``O_APPEND``
descriptor per record, which POSIX serializes at end-of-file — so
multiple *processes* appending to one shared history directory (a
daemon recording next to one-shot CI runs) must never interleave bytes
mid-line.  These tests prove the writer-side contract: under real
multi-process contention every line still parses, no record is lost,
and ``reindex`` rebuilds a consistent index from the log alone.
"""

import json
import multiprocessing
import sys

import pytest

from repro.obs.history import SCHEMA_VERSION, HistoryStore

WRITERS = 6
RECORDS_PER_WRITER = 25


def _record(writer: int, seq: int, payload: str) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "ts": 0.0,
        "command": "concurrency-test",
        "label": f"w{writer}-{seq}",
        "fingerprint": f"fp-{writer}",
        "wall_seconds": 0.0,
        "peak_mb": 0.0,
        "exit_code": 0,
        "findings": {"total": 0, "digest": ""},
        "robust": {"degradations": 0, "diagnostics": [{"detail": payload}]},
    }


def _writer_main(directory: str, writer: int, payload_bytes: int) -> None:
    store = HistoryStore(directory)
    payload = f"writer-{writer}:" + "x" * payload_bytes
    for seq in range(RECORDS_PER_WRITER):
        store.append(_record(writer, seq, payload))


@pytest.mark.parametrize(
    "payload_bytes",
    [
        64,
        # Records far past one page / PIPE_BUF: proves line atomicity is
        # the O_APPEND single-write contract, not a small-write accident.
        16 * 1024,
    ],
)
def test_parallel_process_appenders_never_tear_lines(tmp_path, payload_bytes):
    directory = str(tmp_path / "history")
    ctx = multiprocessing.get_context(
        "fork" if sys.platform != "win32" else "spawn"
    )
    workers = [
        ctx.Process(target=_writer_main, args=(directory, w, payload_bytes))
        for w in range(WRITERS)
    ]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    store = HistoryStore(directory)
    # Every raw line is complete, parseable JSON — no interleaving, no
    # torn tails (records() would silently skip a corrupt line, so the
    # raw read is the stronger assertion).
    with open(store.runs_path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line]
    assert len(lines) == WRITERS * RECORDS_PER_WRITER
    labels = set()
    for line in lines:
        record = json.loads(line)  # raises on any corruption
        assert record["command"] == "concurrency-test"
        detail = record["robust"]["diagnostics"][0]["detail"]
        assert detail.startswith(f"writer-{record['fingerprint'][3:]}:")
        labels.add(record["label"])
    # No record lost: every (writer, seq) pair landed exactly once.
    assert len(labels) == WRITERS * RECORDS_PER_WRITER

    # The per-process index races are recoverable: reindex rebuilds a
    # full, consistent index from the log alone.
    assert store.reindex() == WRITERS * RECORDS_PER_WRITER
    assert len(store.index()) == WRITERS * RECORDS_PER_WRITER
    assert len(store.records()) == WRITERS * RECORDS_PER_WRITER


def test_threaded_appenders_within_one_process(tmp_path):
    """Same contract inside one process (the daemon's worker threads
    and a monitor exporter sharing the store)."""
    import threading

    directory = str(tmp_path / "history")
    store = HistoryStore(directory)
    errors = []

    def loop(writer: int) -> None:
        try:
            for seq in range(RECORDS_PER_WRITER):
                store.append(_record(writer, seq, f"t{writer}"))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=loop, args=(w,)) for w in range(WRITERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    records = store.records()
    assert len(records) == WRITERS * RECORDS_PER_WRITER
    assert store.reindex() == WRITERS * RECORDS_PER_WRITER
