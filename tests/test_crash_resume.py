"""Crash durability: the run journal, ``--resume``, and its fault sites.

The contract under test is ISSUE 6's acceptance story: a run killed
mid-wave leaves a journal describing a *consistent prefix* of its
progress; rerunning with ``--resume`` recomputes only functions the
journal cannot vouch for (journaled + still cache-resident functions
are skipped, counted by ``journal.skips``); and the resumed run's
reports and diagnostics are byte-identical to an uninterrupted run.
The ``kill-worker``/``torn-journal``/``disk-full`` fault sites make
every one of those paths deterministic to exercise.
"""

import dataclasses
import json
import os

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.cache import JOURNAL_FILE, SummaryStore, open_journal, resolve_resume
from repro.cache.journal import JOURNAL_SCHEMA, RESUME_ENV, RunJournal
from repro.cache.store import CACHE_DIR_ENV
from repro.cli import main
from repro.obs.history import HISTORY_DIR_ENV
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.robust.diagnostics import STAGE_SCHED
from repro.robust.faults import install_faults, reset_faults
from repro.sched import JOBS_ENV

PROGRAM = """
fn helper(p) { x = *p; return x; }
fn touch(p) { *p = 7; return 0; }
fn chain(p) { t = touch(p); h = helper(p); return t + h; }
fn main() {
    p = malloc();
    free(p);
    y = chain(p);
    q = malloc();
    *q = 1;
    z = helper(q);
    free(q);
    return y + z;
}
"""

# Same program with a body-only edit in `helper` (same interface): on
# resume, exactly `helper` must recompute — its callers keep matching.
PROGRAM_EDITED = PROGRAM.replace(
    "fn helper(p) { x = *p; return x; }",
    "fn helper(p) { x = *p; y = x + 0; return y; }",
)

#: Wave plan of PROGRAM: leaves first, then their caller, then main.
WAVE0 = {"helper", "touch"}


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    for var in (JOBS_ENV, RESUME_ENV, CACHE_DIR_ENV, HISTORY_DIR_ENV):
        monkeypatch.delenv(var, raising=False)
    reset_faults()
    set_registry(MetricsRegistry())
    yield
    reset_faults()
    set_registry(MetricsRegistry())


def _snapshot(source, **kwargs):
    """(reports, diagnostics) of one run, as plain data."""
    engine = Pinpoint.from_source(source, **kwargs)
    result = engine.check(UseAfterFreeChecker())
    return (
        [dataclasses.asdict(r) for r in result.reports],
        [d.as_dict() for d in result.diagnostics],
    )


def _counter(name):
    return get_registry().counter(name).total()


def _gauge(name):
    metric = get_registry().gauge(name)
    items = metric.items()
    return items[-1][1] if items else 0.0


# ----------------------------------------------------------------------
# Journal read/write unit behaviour
# ----------------------------------------------------------------------
def test_journal_roundtrip(tmp_path):
    journal = RunJournal(str(tmp_path / JOURNAL_FILE))
    journal.begin(
        program_fingerprint="p" * 16,
        condensation="c" * 16,
        waves=3,
        functions=4,
        jobs=2,
    )
    journal.record_function("helper", "d1", 0)
    journal.record_function("touch", "d2", 0)
    journal.record_wave(0)
    journal.finish()
    state = journal.load()
    assert state is not None
    assert state.program_fingerprint == "p" * 16
    assert state.condensation == "c" * 16
    assert state.completed == {"d1": "helper", "d2": "touch"}
    assert state.completed_waves == {0}
    assert state.finished


def test_journal_load_tolerates_torn_tail(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = RunJournal(path)
    journal.begin(
        program_fingerprint="p", condensation="c", waves=2, functions=2, jobs=1
    )
    journal.record_function("helper", "d1", 0)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "fn", "name": "tou')  # crash mid-append
    state = journal.load()
    assert state is not None
    assert state.completed == {"d1": "helper"}
    assert state.torn_tail
    assert not state.finished


def test_journal_load_rejects_schema_mismatch_and_absence(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    assert RunJournal(path).load() is None  # absent
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps({"kind": "begin", "schema": JOURNAL_SCHEMA + 1}) + "\n"
        )
    assert RunJournal(path).load() is None  # future schema


def test_begin_fresh_truncates_stale_journal(tmp_path):
    journal = RunJournal(str(tmp_path / JOURNAL_FILE))
    journal.begin(
        program_fingerprint="old", condensation="c", waves=1, functions=1, jobs=1
    )
    journal.record_function("helper", "stale", 0)
    journal.begin(
        program_fingerprint="new", condensation="c", waves=1, functions=1, jobs=1
    )
    state = journal.load()
    assert state.program_fingerprint == "new"
    assert state.completed == {}  # the stale completion is gone


def test_resolve_resume_env(monkeypatch):
    assert resolve_resume(True)
    assert not resolve_resume(False)
    monkeypatch.setenv(RESUME_ENV, "1")
    assert resolve_resume(False)
    monkeypatch.setenv(RESUME_ENV, "off")
    assert not resolve_resume(False)


# ----------------------------------------------------------------------
# kill-worker: a run killed mid-wave exits 3 and leaves a journal
# ----------------------------------------------------------------------
def test_kill_worker_exits_degraded_with_journal_behind(tmp_path, capsys):
    program = tmp_path / "prog.pin"
    program.write_text(PROGRAM)
    cache_dir = str(tmp_path / "cache")
    code = main(
        [
            "check", str(program), "--all", "--json",
            "--jobs", "2",
            "--cache-dir", cache_dir,
            "--fault", "kill-worker:0",
        ]
    )
    capsys.readouterr()
    assert code == 3  # degraded coverage
    journal = RunJournal(os.path.join(cache_dir, JOURNAL_FILE))
    state = journal.load()
    assert state is not None
    # Wave 0's functions died before completing; nothing vouches for
    # them.  Later waves completed (degraded) and are journaled.
    assert WAVE0.isdisjoint(set(state.completed.values()))
    assert "main" in state.completed.values()
    assert not state.finished or state.completed  # consistent prefix


def test_resume_after_kill_worker_matches_uninterrupted(tmp_path):
    reference = _snapshot(PROGRAM)

    cache_dir = str(tmp_path / "cache")
    install_faults("kill-worker:0")
    set_registry(MetricsRegistry())
    killed = _snapshot(
        PROGRAM, jobs=2, cache_dir=cache_dir, journal=open_journal(cache_dir)
    )
    assert any(d["stage"] == STAGE_SCHED for d in killed[1])

    reset_faults()
    set_registry(MetricsRegistry())
    resumed = _snapshot(
        PROGRAM,
        jobs=2,
        cache_dir=cache_dir,
        journal=open_journal(cache_dir),
        resume=True,
    )
    assert resumed == reference
    assert _gauge("sched.resumed") == 1


# ----------------------------------------------------------------------
# A SIGKILL-shaped interruption: journal prefix + partial cache
# ----------------------------------------------------------------------
def _truncate_to_wave0(cache_dir):
    """Rewrite journal + cache as a run SIGKILLed after wave 0 leaves
    them: only wave-0 completions journaled, only their artifacts on
    disk."""
    journal = RunJournal(os.path.join(cache_dir, JOURNAL_FILE))
    state = journal.load()
    keep = {d for d, name in state.completed.items() if name in WAVE0}
    kept_lines = []
    for record in journal.records():
        if record["kind"] == "begin":
            kept_lines.append(record)
        elif record["kind"] == "fn" and record["digest"] in keep:
            kept_lines.append(record)
        elif record["kind"] == "wave" and record["wave"] == 0:
            kept_lines.append(record)
    with open(journal.path, "w", encoding="utf-8") as handle:
        for record in kept_lines:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    store = SummaryStore(cache_dir)
    for digest, name in state.completed.items():
        if name not in WAVE0:
            os.unlink(store._path(digest))
    return keep


def test_resume_recomputes_only_unjournaled_functions(tmp_path):
    reference = _snapshot(PROGRAM)

    cache_dir = str(tmp_path / "cache")
    set_registry(MetricsRegistry())
    _snapshot(PROGRAM, cache_dir=cache_dir, journal=open_journal(cache_dir))
    _truncate_to_wave0(cache_dir)

    set_registry(MetricsRegistry())
    resumed = _snapshot(
        PROGRAM,
        cache_dir=cache_dir,
        journal=open_journal(cache_dir),
        resume=True,
    )
    assert resumed == reference
    # Exactly the journaled wave-0 functions were skipped; exactly the
    # two lost functions (chain, main) were recomputed and re-persisted.
    assert _counter("journal.skips") == len(WAVE0)
    assert _counter("cache.hits") == len(WAVE0)
    assert _counter("cache.writes") == 2
    assert _gauge("sched.resumed") == 1
    assert _gauge("sched.resume_wave") == 1  # re-entered at wave 1


def test_resume_after_source_edit_invalidates_only_changed(tmp_path):
    cache_dir = str(tmp_path / "cache")
    _snapshot(PROGRAM, cache_dir=cache_dir, journal=open_journal(cache_dir))

    reference = _snapshot(PROGRAM_EDITED)
    set_registry(MetricsRegistry())
    resumed = _snapshot(
        PROGRAM_EDITED,
        cache_dir=cache_dir,
        journal=open_journal(cache_dir),
        resume=True,
    )
    assert resumed == reference
    # `helper` changed (body-only, same interface): it alone recomputes;
    # `touch`, `chain`, `main` keep their AST×interface digests and are
    # skipped straight from the journal + cache.
    assert _counter("cache.writes") == 1
    assert _counter("journal.skips") == 3
    assert _gauge("sched.resume_wave") == 0  # helper lives in wave 0


# ----------------------------------------------------------------------
# torn-journal and disk-full degrade durability, never the analysis
# ----------------------------------------------------------------------
def test_torn_journal_keeps_consistent_prefix_and_resumes(tmp_path):
    reference = _snapshot(PROGRAM)

    cache_dir = str(tmp_path / "cache")
    install_faults("torn-journal*1")
    set_registry(MetricsRegistry())
    torn = _snapshot(
        PROGRAM, cache_dir=cache_dir, journal=open_journal(cache_dir)
    )
    assert torn == reference  # the analysis itself is unaffected
    assert _counter("journal.torn_writes") == 1

    journal = RunJournal(os.path.join(cache_dir, JOURNAL_FILE))
    state = journal.load()
    assert state is not None  # the header parses; the tail is skipped
    assert len(state.completed) < 4

    reset_faults()
    set_registry(MetricsRegistry())
    resumed = _snapshot(
        PROGRAM,
        cache_dir=cache_dir,
        journal=open_journal(cache_dir),
        resume=True,
    )
    assert resumed == reference
    assert _gauge("sched.resumed") == 1


def test_persistent_disk_full_disables_journal_not_the_run(tmp_path):
    reference = _snapshot(PROGRAM)
    cache_dir = str(tmp_path / "cache")
    install_faults("disk-full")
    set_registry(MetricsRegistry())
    degraded = _snapshot(
        PROGRAM, cache_dir=cache_dir, journal=open_journal(cache_dir)
    )
    assert degraded == reference
    assert _counter("journal.errors") >= 1
    assert _counter("cache.writes") == 0  # every put degraded to False


def test_resume_without_journal_dir_warns_and_runs_fresh(tmp_path, capsys):
    program = tmp_path / "prog.pin"
    program.write_text(PROGRAM)
    code = main(["check", str(program), "--resume"])
    captured = capsys.readouterr()
    assert code == 1  # the findings are still produced
    assert "running fresh" in captured.err
