"""Wave condensation of the call graph (repro.sched.waves)."""

from repro.ir.callgraph import CallGraph
from repro.ir.lower import lower_program
from repro.lang.parser import parse_program
from repro.sched.waves import scc_waves, wave_sizes

DIAMOND = """
fn leaf_a(p) { x = *p; return x; }
fn leaf_b(p) { *p = 1; return 0; }
fn mid(p) { a = leaf_a(p); b = leaf_b(p); return a + b; }
fn main() {
    p = malloc();
    r = mid(p);
    free(p);
    return r;
}
"""

RECURSIVE = """
fn even(n) { if (n > 0) { r = odd(n - 1); return r; } return 1; }
fn odd(n) { if (n > 0) { r = even(n - 1); return r; } return 0; }
fn main(n) { e = even(n); return e; }
"""


def _waves(source):
    program = parse_program(source)
    return scc_waves(CallGraph(lower_program(program)))


def _flatten(waves):
    return [name for wave in waves for scc in wave for name in scc]


def test_leaves_first_callers_later():
    waves = _waves(DIAMOND)
    assert len(waves) == 3
    assert sorted(_flatten(waves[:1])) == ["leaf_a", "leaf_b"]
    assert _flatten([waves[1]]) == ["mid"]
    assert _flatten([waves[2]]) == ["main"]


def test_wave_invariant_callees_in_earlier_waves():
    program = parse_program(DIAMOND)
    callgraph = CallGraph(lower_program(program))
    waves = scc_waves(callgraph)
    wave_of = {
        name: index
        for index, wave in enumerate(waves)
        for scc in wave
        for name in scc
    }
    scc_of = {}
    for index, scc in enumerate(callgraph.sccs()):
        for member in scc:
            scc_of[member] = index
    for name, wave in wave_of.items():
        for callee in callgraph.callees.get(name, ()):
            if callee not in wave_of or scc_of[callee] == scc_of[name]:
                continue
            assert wave_of[callee] < wave


def test_recursive_scc_stays_one_unit():
    waves = _waves(RECURSIVE)
    mutual = [scc for wave in waves for scc in wave if len(scc) > 1]
    assert mutual == [["even", "odd"]]
    # The SCC occupies one wave; main depends on it and comes later.
    wave_of = {
        name: index
        for index, wave in enumerate(waves)
        for scc in wave
        for name in scc
    }
    assert wave_of["even"] == wave_of["odd"]
    assert wave_of["main"] > wave_of["even"]


def test_waves_cover_every_function_once():
    flat = _flatten(_waves(DIAMOND))
    assert sorted(flat) == ["leaf_a", "leaf_b", "main", "mid"]
    assert len(flat) == len(set(flat))


def test_waves_deterministic_across_rebuilds():
    assert _waves(DIAMOND) == _waves(DIAMOND)
    assert _waves(RECURSIVE) == _waves(RECURSIVE)


def test_wave_sizes():
    assert wave_sizes(_waves(DIAMOND)) == [2, 1, 1]
    assert sum(wave_sizes(_waves(RECURSIVE))) == 3


def test_empty_program_has_no_waves():
    assert _waves("") == []
