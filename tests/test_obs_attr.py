"""Cost attribution: critical path, the why-slow document, and the
cross-process span tree a ``--jobs 2`` run actually assembles.

The acceptance contract of the attribution layer:

- every worker task span in a merged trace parents under the wave span
  that dispatched it (trace-context propagation survives the process
  boundary);
- the compute/dispatch-overhead shares sum to 1.0 and are denominated
  against real wall time (consistent within 10%);
- the split lands in run history and ``history diff`` surfaces it.
"""

import json

from repro import Pinpoint, UseAfterFreeChecker
from repro.obs.attr import (
    cost_breakdown,
    critical_path,
    render_why_slow,
)
from repro.obs.clock import ManualClock
from repro.obs.measure import Measurement
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.trace import Tracer, get_tracer, set_tracer

import pytest

PROGRAM = """
fn helper(p) { x = *p; return x; }
fn touch(p) { *p = 7; return 0; }
fn chain(p) { t = touch(p); h = helper(p); return t + h; }
fn main() {
    p = malloc();
    free(p);
    y = chain(p);
    return y;
}
"""


@pytest.fixture(autouse=True)
def _clean_obs_state():
    old_tracer = get_tracer()
    old_registry = get_registry()
    set_registry(MetricsRegistry())
    yield
    set_tracer(old_tracer)
    set_registry(old_registry)


def make_tracer(tick=1.0):
    return Tracer(clock=ManualClock(tick=tick), enabled=True)


# ----------------------------------------------------------------------
# Critical path over synthetic trees
# ----------------------------------------------------------------------
def test_critical_path_descends_heaviest_chain():
    tracer = make_tracer()
    with tracer.span("run"):
        with tracer.span("light"):
            pass
        with tracer.span("heavy"):
            with tracer.span("leaf"):
                pass
            with tracer.span("leaf2"):
                pass
    chain = critical_path(tracer.spans)
    assert [s.name for s in chain][:2] == ["run", "heavy"]
    # Each link is a real parent edge.
    for parent, child in zip(chain, chain[1:]):
        assert child.parent == parent.uid
        assert child.duration <= parent.duration


def test_critical_path_empty_and_single():
    assert critical_path([]) == []
    tracer = make_tracer()
    with tracer.span("only"):
        pass
    assert [s.name for s in critical_path(tracer.spans)] == ["only"]


# ----------------------------------------------------------------------
# The breakdown document (synthetic run)
# ----------------------------------------------------------------------
def _synthetic_run():
    """A hand-built two-wave parallel run: tracer + registry + wall."""
    tracer = make_tracer(tick=0.5)
    with tracer.span("sched.wave", unit="0") as w0:
        w0.set(functions=2, dispatched=2, cached=0,
               straggler="helper", straggler_seconds=0.4)
    with tracer.span("sched.wave", unit="1") as w1:
        w1.set(functions=1, dispatched=1, cached=0,
               straggler="main", straggler_seconds=0.3)
    registry = MetricsRegistry()
    registry.gauge("sched.jobs", "j").set(2)
    registry.gauge("attr.wave_seconds", "w").set(1.0)
    registry.gauge("attr.work_seconds", "w").set(1.4)
    registry.gauge("attr.critical_path_seconds", "c").set(0.7)
    registry.gauge("attr.utilization", "u").set(0.7)
    registry.gauge("attr.overhead_ratio", "o").set(0.3)
    registry.counter("sched.dispatch.serialize_seconds", "s").inc(0.02)
    registry.counter("sched.dispatch.serialize_bytes", "b").inc(2048)
    registry.counter("sched.dispatch.result_bytes", "b").inc(4096)
    measurement = Measurement(seconds=1.2, peak_bytes=10 * 1024 * 1024)
    return tracer, registry, measurement


def test_cost_breakdown_shares_sum_to_one():
    tracer, registry, measurement = _synthetic_run()
    doc = cost_breakdown(tracer, registry, measurement, source_label="synth")
    shares = doc["shares"]
    assert abs(shares["compute"] + shares["dispatch_overhead"] - 1.0) < 1e-6
    assert 0.0 <= shares["dispatch_overhead"] <= 1.0
    # Denominator is the largest wall figure available (measured 1.2s).
    assert doc["accounted_seconds"] == pytest.approx(1.2)
    # dispatch wall = wave 1.0 - critical 0.7 = 0.3 -> share 0.25.
    assert shares["dispatch_overhead"] == pytest.approx(0.25)


def test_cost_breakdown_parallel_and_waves():
    tracer, registry, measurement = _synthetic_run()
    doc = cost_breakdown(tracer, registry, measurement)
    parallel = doc["parallel"]
    assert parallel["jobs"] == 2
    assert parallel["speedup_bound"] == pytest.approx(1.4 / 0.7, abs=0.01)
    waves = doc["waves"]
    assert len(waves) == 2
    # Sorted by wall, heaviest first; barrier waste = wall - straggler.
    assert waves[0]["seconds"] >= waves[1]["seconds"]
    for row in waves:
        assert row["barrier_waste_seconds"] == pytest.approx(
            max(0.0, row["seconds"] - row["straggler_seconds"]), abs=1e-6
        )
    assert doc["overhead"]["serialize_bytes"] == 2048
    assert doc["overhead"]["result_bytes"] == 4096


def test_cost_breakdown_serial_fallback_uses_chain_root():
    """No attr gauges (serial, no scheduler): the heaviest root bounds
    the run and the dispatch share collapses to zero."""
    tracer = make_tracer()
    with tracer.span("prepare.fn", unit="f"):
        pass
    doc = cost_breakdown(tracer, MetricsRegistry())
    assert doc["shares"]["dispatch_overhead"] == 0.0
    assert doc["shares"]["compute"] == 1.0
    assert doc["critical_path_seconds"] > 0


def test_render_why_slow_mentions_key_sections():
    tracer, registry, measurement = _synthetic_run()
    doc = cost_breakdown(tracer, registry, measurement, source_label="synth")
    text = render_why_slow(doc)
    assert "repro why-slow — synth" in text
    assert "critical path" in text
    assert "dispatch overhead breakdown" in text
    assert "parallel efficiency" in text
    assert "speedup bound" in text


# ----------------------------------------------------------------------
# End to end: a real --jobs 2 run
# ----------------------------------------------------------------------
def _parallel_traced_run():
    tracer = set_tracer(Tracer(enabled=True))
    engine = Pinpoint.from_source(PROGRAM, jobs=2)
    engine.check(UseAfterFreeChecker())
    return tracer, get_registry()


def test_worker_spans_parent_under_wave_spans():
    tracer, _registry = _parallel_traced_run()
    spans = list(tracer.spans)
    waves = {s.uid: s for s in spans if s.name == "sched.wave"}
    workers = [s for s in spans if s.name == "sched.worker"]
    assert waves and workers
    for worker in workers:
        # Every absorbed worker task hangs off the wave that dispatched
        # it — and the wave index matches the payload's wave_index.
        assert worker.parent in waves, worker
        assert worker.args.get("trace_id") == tracer.trace_id
    # The merged Chrome trace carries the same tree.
    doc = tracer.to_chrome_trace()
    names = [e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert names.count("sched.worker") == len(workers)


def test_why_slow_split_consistent_with_wall():
    tracer, registry = _parallel_traced_run()
    from repro.obs.measure import measure

    # Re-measure a fresh run under the same tracer so the measurement
    # and the spans describe the same work envelope.
    tracer.clear()
    set_registry(MetricsRegistry())

    def run():
        engine = Pinpoint.from_source(PROGRAM, jobs=2)
        return engine.check(UseAfterFreeChecker())

    _, m = measure(run)
    doc = cost_breakdown(tracer, get_registry(), m, source_label="test")
    shares = doc["shares"]
    total = shares["compute"] + shares["dispatch_overhead"]
    assert total <= 1.0 + 1e-6
    # Consistency with wall time: the accounted denominator is within
    # 10% of (>=) the measured wall, and the shares explain all of it.
    assert doc["accounted_seconds"] >= m.seconds * 0.999
    assert total == pytest.approx(1.0, abs=0.1)
    assert doc["parallel"]["jobs"] == 2
    assert doc["critical_path"], "critical path must be non-empty"
    assert doc["overhead"]["serialize_bytes"] > 0
    assert json.loads(json.dumps(doc)) == doc  # JSON-safe document


def test_attr_gauges_present_without_tracing():
    set_tracer(Tracer(enabled=False))
    set_registry(MetricsRegistry())
    engine = Pinpoint.from_source(PROGRAM, jobs=2)
    engine.check(UseAfterFreeChecker())
    registry = get_registry()
    for name in (
        "attr.wave_seconds",
        "attr.work_seconds",
        "attr.critical_path_seconds",
        "attr.utilization",
        "attr.overhead_ratio",
    ):
        assert registry.get(name) is not None, name
    assert registry.get("sched.dispatch.serialize_bytes").total() > 0
