"""Tests for the progress tracker and the live analysis monitor."""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.monitor import MonitorServer, fetch, get_active_monitor
from repro.obs.progress import (
    MAX_EVENTS,
    ProgressTracker,
    get_progress,
    set_progress,
)
from repro.robust.faults import reset_faults

UAF = """
fn main() {
    p = malloc();
    free(p);
    x = *p;
    return x;
}
"""


@pytest.fixture
def uaf_file(tmp_path):
    path = tmp_path / "uaf.pin"
    path.write_text(UAF)
    return str(path)


@pytest.fixture(autouse=True)
def _restore_globals():
    registry = get_registry()
    progress = get_progress()
    yield
    set_registry(registry)
    set_progress(progress)
    reset_faults()
    active = get_active_monitor()
    if active is not None:
        active.stop()


def tracker(enabled=True):
    t = ProgressTracker(clock=lambda: 123.0)
    t.enabled = enabled
    return t


# ----------------------------------------------------------------------
# ProgressTracker
# ----------------------------------------------------------------------
def test_disabled_tracker_is_inert():
    t = tracker(enabled=False)
    t.begin_run("check", "x")
    t.set_stage("prepare")
    t.wave_progress(1, 2, prepared=5)
    t.tick(prepared=1)
    t.checker_done("uaf", 3)
    t.finish(0)
    snap = t.snapshot()
    assert snap["stage"] == "idle"
    assert snap["running"] is False
    assert snap["events"] == 0
    assert t.events_after(0) == []


def test_tracker_lifecycle_snapshot():
    t = tracker()
    t.begin_run("check", "prog.pin")
    t.set_stage("prepare", functions=4)
    t.set_functions_total(4)
    t.wave_progress(1, 2, prepared=2, cached=1)
    t.wave_progress(2, 2, prepared=1, quarantined=1)
    t.tick(cached=1)
    t.checker_done("use-after-free", 2)
    snap = t.snapshot()
    assert snap["command"] == "check"
    assert snap["label"] == "prog.pin"
    assert snap["running"] is True
    assert snap["waves"] == {"done": 2, "total": 2}
    assert snap["functions"] == {
        "total": 4,
        "prepared": 3,
        "cached": 2,
        "quarantined": 1,
    }
    assert snap["checkers_done"] == ["use-after-free"]
    t.finish(1)
    snap = t.snapshot()
    assert snap["running"] is False
    assert snap["stage"] == "done"
    assert snap["exit_code"] == 1


def test_begin_run_resets_previous_state():
    t = tracker()
    t.begin_run("check", "a")
    t.wave_progress(3, 3, prepared=9)
    t.finish(0)
    t.begin_run("check", "b")
    snap = t.snapshot()
    assert snap["label"] == "b"
    assert snap["waves"] == {"done": 0, "total": 0}
    assert snap["functions"]["prepared"] == 0
    assert snap["running"] is True


def test_event_log_sequencing_and_since():
    t = tracker()
    t.begin_run("check")
    t.set_stage("parse")
    t.set_stage("prepare")
    events = t.events_after(0)
    assert [e["kind"] for e in events] == ["run.start", "stage", "stage"]
    assert [e["seq"] for e in events] == [1, 2, 3]
    assert [e["seq"] for e in t.events_after(2)] == [3]
    assert t.events_after(0, limit=2) == events[:2]


def test_event_ring_buffer_caps_memory():
    t = tracker()
    for i in range(MAX_EVENTS + 100):
        t.heartbeat(i=i)
    events = t.events_after(0)
    assert len(events) == MAX_EVENTS
    # the gap in sequence numbers tells consumers how much fell off
    assert events[0]["seq"] == 101


def test_tick_emits_no_events():
    t = tracker()
    for _ in range(1000):
        t.tick(prepared=1)
    assert t.events_after(0) == []
    assert t.snapshot()["functions"]["prepared"] == 1000


def test_wait_for_event_times_out_and_wakes():
    t = ProgressTracker()
    t.enabled = True
    assert t.wait_for_event(0, timeout=0.01) is False

    def later():
        time.sleep(0.05)
        t.heartbeat()

    thread = threading.Thread(target=later)
    thread.start()
    assert t.wait_for_event(0, timeout=5.0) is True
    thread.join()


def test_snapshot_reports_degradations_from_registry():
    registry = set_registry(MetricsRegistry())
    registry.counter("robust.degradations", "d").inc(2)
    t = tracker()
    t.begin_run("check")
    snap = t.snapshot()
    assert snap["degraded"] is True
    assert snap["degradations"] == 2


def test_snapshot_degraded_from_exit_code():
    set_registry(MetricsRegistry())
    t = tracker()
    t.begin_run("check")
    t.finish(3)
    assert t.snapshot()["degraded"] is True


def test_disabled_tick_overhead_guard():
    """Progress call sites sit on per-function hot paths; while disabled
    they must stay one truth-test cheap (order-of-magnitude bound)."""
    t = ProgressTracker()
    start = time.perf_counter()
    for _ in range(100_000):
        t.tick(prepared=1)
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"100k disabled ticks took {elapsed:.2f}s"


# ----------------------------------------------------------------------
# MonitorServer endpoints
# ----------------------------------------------------------------------
def test_monitor_endpoints_serve_progress_and_metrics():
    registry = set_registry(MetricsRegistry())
    registry.counter("smt.queries", "q").inc(7, checker="uaf")
    t = set_progress(tracker())
    t.begin_run("check", "prog.pin")
    t.set_stage("seg")
    with MonitorServer(port=0) as monitor:
        status, body = fetch(monitor.url + "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["ok"] is True
        assert health["stage"] == "seg"
        assert health["running"] is True
        assert health["degraded"] is False

        status, body = fetch(monitor.url + "/status")
        snap = json.loads(body)
        assert status == 200
        assert snap["command"] == "check"
        assert snap["label"] == "prog.pin"

        status, body = fetch(monitor.url + "/metrics")
        assert status == 200
        assert "repro_smt_queries_total" in body
        assert 'checker="uaf"' in body

        status, body = fetch(monitor.url + "/events?follow=0")
        assert status == 200
        events = [json.loads(line) for line in body.splitlines()]
        assert [e["kind"] for e in events] == ["run.start", "stage"]

        status, body = fetch(monitor.url + "/events?follow=0&since=1")
        assert [json.loads(line)["kind"] for line in body.splitlines()] == ["stage"]

        status, body = fetch(monitor.url + "/nope")
        assert status == 404
    assert get_active_monitor() is None


def test_monitor_sse_stream_closes_on_run_finish():
    set_registry(MetricsRegistry())
    t = set_progress(tracker())
    t.begin_run("check")
    with MonitorServer(port=0) as monitor:

        def finish_soon():
            time.sleep(0.1)
            t.set_stage("checker")
            t.finish(0)

        thread = threading.Thread(target=finish_soon)
        thread.start()
        status, body = fetch(monitor.url + "/events", timeout=10.0)
        thread.join()
        assert status == 200
        assert "event: run.start" in body
        assert "event: run.finish" in body
        assert '"exit_code": 0' in body


def test_monitor_empty_registry_metrics():
    set_registry(MetricsRegistry())
    set_progress(tracker())
    with MonitorServer(port=0) as monitor:
        status, body = fetch(monitor.url + "/metrics")
        assert status == 200
        assert body.strip() == ""


def test_monitor_stop_is_idempotent():
    monitor = MonitorServer(port=0)
    monitor.start()
    monitor.stop()
    monitor.stop()
    assert not monitor.running


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def _run_cli_with_monitor(argv):
    """Run the CLI on a thread; return (monitor, result-dict, thread)
    once the monitor has come up."""
    result = {}

    def run():
        result["code"] = main(argv)

    thread = threading.Thread(target=run)
    thread.start()
    for _ in range(200):
        monitor = get_active_monitor()
        if monitor is not None:
            return monitor, result, thread
        time.sleep(0.025)
    thread.join(timeout=10)
    raise AssertionError("monitor never started")


def test_serve_all_endpoints_respond_during_run(uaf_file):
    """Acceptance criterion: all four endpoints answer while a --jobs 2
    analysis is in flight (a slow fault holds the run open)."""
    monitor, result, thread = _run_cli_with_monitor(
        ["serve", uaf_file, "--jobs", "2", "--fault", "slow:0.8", "--linger"]
    )
    try:
        status, body = fetch(monitor.url + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["ok"] is True
        assert health["running"] is True  # analysis still sleeping

        status, body = fetch(monitor.url + "/status")
        assert status == 200
        snap = json.loads(body)
        assert snap["command"] == "check"
        assert snap["running"] is True

        status, body = fetch(monitor.url + "/metrics")
        assert status == 200

        status, body = fetch(monitor.url + "/events?follow=0")
        assert status == 200
        kinds = [json.loads(line)["kind"] for line in body.splitlines()]
        assert "run.start" in kinds
    finally:
        monitor.stop()  # unblocks --linger
        thread.join(timeout=15)
    assert result["code"] == 1  # the UAF finding

    # After the run the monitor released its port and deregistered.
    assert get_active_monitor() is None


def test_serve_records_wave_progress_with_jobs(uaf_file):
    monitor, result, thread = _run_cli_with_monitor(
        ["serve", uaf_file, "--jobs", "2", "--linger"]
    )
    try:
        # wait for the analysis itself to finish (linger keeps serving)
        for _ in range(200):
            snap = json.loads(fetch(monitor.url + "/status")[1])
            if not snap["running"]:
                break
            time.sleep(0.05)
        assert snap["running"] is False
        assert snap["stage"] == "done"
        assert snap["exit_code"] == 1
        assert snap["waves"]["total"] >= 1
        assert snap["waves"]["done"] == snap["waves"]["total"]
        assert snap["functions"]["total"] >= 1
        kinds = [
            json.loads(line)["kind"]
            for line in fetch(monitor.url + "/events?follow=0")[1].splitlines()
        ]
        assert "wave" in kinds
        assert kinds[-1] == "run.finish"
    finally:
        monitor.stop()
        thread.join(timeout=15)


def test_check_monitor_port_flag(uaf_file, capsys):
    monitor, result, thread = _run_cli_with_monitor(
        ["check", uaf_file, "--monitor-port", "0", "--fault", "slow:0.5"]
    )
    status, _ = fetch(monitor.url + "/healthz")
    assert status == 200
    thread.join(timeout=15)
    assert result["code"] == 1
    assert not monitor.running
    assert "[monitor] serving on http://127.0.0.1:" in capsys.readouterr().err


def test_monitor_reports_degraded_run(uaf_file):
    """A fault-quarantined (exit 3) run shows up as degraded on
    /healthz and /status while the monitor is still serving."""
    monitor, result, thread = _run_cli_with_monitor(
        ["serve", uaf_file, "--fault", "prepare", "--linger"]
    )
    try:
        for _ in range(200):
            health = json.loads(fetch(monitor.url + "/healthz")[1])
            if not health["running"]:
                break
            time.sleep(0.05)
        assert health["ok"] is True  # degraded is state, not ill health
        assert health["degraded"] is True
        snap = json.loads(fetch(monitor.url + "/status")[1])
        assert snap["degraded"] is True
        assert snap["degradations"] >= 1
        assert snap["exit_code"] == 3
    finally:
        monitor.stop()
        thread.join(timeout=15)
    assert result["code"] == 3


def test_check_without_monitor_starts_no_server(uaf_file):
    assert main(["check", uaf_file]) == 1
    assert get_active_monitor() is None
    assert get_progress().enabled is False
