"""End-to-end tests of the Pinpoint engine (Section 3.3)."""

import pytest

from repro import (
    DoubleFreeChecker,
    EngineConfig,
    MemoryLeakChecker,
    NullDereferenceChecker,
    Pinpoint,
    UseAfterFreeChecker,
)


def check_uaf(source: str, config=None):
    return Pinpoint.from_source(source, config).check(UseAfterFreeChecker())


# ----------------------------------------------------------------------
# Intra-procedural use-after-free
# ----------------------------------------------------------------------
def test_simple_uaf_detected():
    result = check_uaf(
        """
        fn main() {
            p = malloc();
            free(p);
            x = *p;
            return x;
        }
        """
    )
    assert len(result) == 1
    report = result.reports[0]
    assert report.checker == "use-after-free"
    assert report.source.function == "main"


def test_no_uaf_when_use_before_free():
    result = check_uaf(
        """
        fn main() {
            p = malloc();
            x = *p;
            free(p);
            return x;
        }
        """
    )
    assert len(result) == 0


def test_uaf_through_copy():
    result = check_uaf(
        """
        fn main() {
            p = malloc();
            q = p;
            free(p);
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 1


def test_uaf_through_memory():
    result = check_uaf(
        """
        fn main() {
            holder = malloc();
            p = malloc();
            *holder = p;
            free(p);
            q = *holder;
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 1


def test_path_sensitive_fp_pruned():
    # free and deref on contradictory branches of the same condition:
    # the classic false positive a path-insensitive tool reports.
    result = check_uaf(
        """
        fn main(c) {
            p = malloc();
            t = c > 0;
            if (t) { free(p); }
            if (!t) { x = *p; return x; }
            return 0;
        }
        """
    )
    assert len(result) == 0


def test_path_sensitive_tp_on_same_branch():
    result = check_uaf(
        """
        fn main(c) {
            p = malloc();
            t = c > 0;
            if (t) { free(p); }
            if (t) { x = *p; return x; }
            return 0;
        }
        """
    )
    assert len(result) == 1


def test_path_insensitive_mode_reports_fp():
    # Ablation: with both condition stages disabled (the linear filter
    # alone already catches this trap as a syntactic a & !a), the
    # contradictory-branch trap IS reported — demonstrating what path
    # sensitivity buys.
    config = EngineConfig(use_smt=False, use_linear_filter=False)
    result = check_uaf(
        """
        fn main(c) {
            p = malloc();
            t = c > 0;
            if (t) { free(p); }
            if (!t) { x = *p; return x; }
            return 0;
        }
        """,
        config,
    )
    assert len(result) == 1


# ----------------------------------------------------------------------
# Inter-procedural use-after-free
# ----------------------------------------------------------------------
def test_uaf_callee_frees_param():
    # VF3: the callee frees its parameter; the caller then dereferences.
    result = check_uaf(
        """
        fn release(p) { free(p); return 0; }
        fn main() {
            p = malloc();
            release(p);
            x = *p;
            return x;
        }
        """
    )
    assert len(result) == 1
    report = result.reports[0]
    assert report.source.function == "release"
    assert report.sink.function == "main"


def test_uaf_callee_returns_freed():
    # VF2: the callee returns a freed pointer.
    result = check_uaf(
        """
        fn make_dangling() {
            p = malloc();
            free(p);
            return p;
        }
        fn main() {
            q = make_dangling();
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 1
    assert result.reports[0].source.function == "make_dangling"


def test_uaf_sink_in_callee():
    # VF4: the caller frees, the callee dereferences.
    result = check_uaf(
        """
        fn deref(p) { x = *p; return x; }
        fn main() {
            p = malloc();
            free(p);
            y = deref(p);
            return y;
        }
        """
    )
    assert len(result) == 1
    assert result.reports[0].sink.function == "deref"


def test_uaf_through_passthrough_callee():
    # VF1: the value flows through an identity-like callee.
    result = check_uaf(
        """
        fn identity(p) { return p; }
        fn main() {
            p = malloc();
            free(p);
            q = identity(p);
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 1


def test_no_uaf_across_unrelated_pointers():
    result = check_uaf(
        """
        fn main() {
            p = malloc();
            q = malloc();
            free(p);
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 0


def test_fig1_use_after_free():
    """The paper's motivating example (Fig. 1): the freed pointer c in
    bar propagates through *q back into foo's f and is dereferenced."""
    result = check_uaf(
        """
        fn foo(a, t1, t2) {
            ptr = malloc();
            *ptr = a;
            if (t1 > 0) {
                bar(ptr);
            } else {
                qux(ptr);
            }
            f = *ptr;
            if (t2 > 0) { x = *f; return x; }
            return 0;
        }

        fn bar(q, b, t4) {
            c = malloc();
            t3 = *q;
            if (t3 != 0) {
                *q = c;
                free(c);
            } else {
                if (t4 > 0) { *q = b; }
            }
            return 0;
        }

        fn qux(r, d, e) {
            if (t5 > 0) { *r = d; } else { *r = e; }
            return 0;
        }
        """
    )
    assert len(result) >= 1
    report = result.reports[0]
    assert report.source.function == "bar"
    assert report.sink.function == "foo"


def test_fig1_no_fp_through_qux():
    """In Fig. 1, only bar's branch can deliver the freed pointer; no
    report should point at d/e (the qux path)."""
    result = check_uaf(
        """
        fn foo(a, t1, t2) {
            ptr = malloc();
            *ptr = a;
            if (t1 > 0) { bar(ptr); } else { qux(ptr); }
            f = *ptr;
            if (t2 > 0) { x = *f; return x; }
            return 0;
        }
        fn bar(q, b, t4) {
            c = malloc();
            t3 = *q;
            if (t3 != 0) { *q = c; free(c); }
            else { if (t4 > 0) { *q = b; } }
            return 0;
        }
        fn qux(r, d, e) {
            if (t5 > 0) { *r = d; } else { *r = e; }
            return 0;
        }
        """
    )
    for report in result:
        assert report.source.function == "bar"


# ----------------------------------------------------------------------
# Other checkers
# ----------------------------------------------------------------------
def test_double_free_detected():
    result = Pinpoint.from_source(
        """
        fn main() {
            p = malloc();
            free(p);
            free(p);
            return 0;
        }
        """
    ).check(DoubleFreeChecker())
    assert len(result) == 1


def test_single_free_not_double():
    result = Pinpoint.from_source(
        """
        fn main() {
            p = malloc();
            q = malloc();
            free(p);
            free(q);
            return 0;
        }
        """
    ).check(DoubleFreeChecker())
    assert len(result) == 0


def test_double_free_across_functions():
    result = Pinpoint.from_source(
        """
        fn cleanup(p) { free(p); return 0; }
        fn main() {
            p = malloc();
            cleanup(p);
            free(p);
            return 0;
        }
        """
    ).check(DoubleFreeChecker())
    assert len(result) == 1


def test_null_deref_detected():
    result = Pinpoint.from_source(
        """
        fn main() {
            p = null;
            x = *p;
            return x;
        }
        """
    ).check(NullDereferenceChecker())
    assert len(result) == 1


def test_memory_leak_detected():
    result = Pinpoint.from_source(
        """
        fn main() {
            p = malloc();
            return 0;
        }
        """
    ).check(MemoryLeakChecker())
    assert len(result) == 1


def test_no_leak_when_freed():
    result = Pinpoint.from_source(
        """
        fn main() {
            p = malloc();
            free(p);
            return 0;
        }
        """
    ).check(MemoryLeakChecker())
    assert len(result) == 0


def test_no_leak_when_returned():
    result = Pinpoint.from_source(
        """
        fn make() {
            p = malloc();
            return p;
        }
        """
    ).check(MemoryLeakChecker())
    assert len(result) == 0


def test_no_leak_when_callee_frees():
    result = Pinpoint.from_source(
        """
        fn sink_it(p) { free(p); return 0; }
        fn main() {
            p = malloc();
            sink_it(p);
            return 0;
        }
        """
    ).check(MemoryLeakChecker())
    assert len(result) == 0


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_stats_populated():
    result = check_uaf(
        """
        fn main() {
            p = malloc();
            free(p);
            x = *p;
            return x;
        }
        """
    )
    stats = result.stats
    assert stats.functions == 1
    assert stats.seg_vertices > 0
    assert stats.seg_edges > 0
    assert stats.candidates >= 1
    assert stats.reported == 1
