"""Unit tests for core support modules: contexts, summaries, reports,
call graph, and the dot exporters."""

import pytest

from repro.core.context import Context, ContextAllocator, clone_term, rename_var
from repro.core.pipeline import prepare_source
from repro.core.report import BugReport, CheckResult, EngineStats, Location
from repro.core.summaries import (
    interface_params,
    receiver_for_slot,
    return_slots,
)
from repro.ir import cfg
from repro.ir.callgraph import CallGraph
from repro.ir.lower import lower_program
from repro.lang.parser import parse_program
from repro.smt import terms as T
from repro.viz.dot import cfg_to_dot, seg_to_dot


# ----------------------------------------------------------------------
# Contexts
# ----------------------------------------------------------------------
def test_context_depth_chain():
    alloc = ContextAllocator()
    c1 = alloc.new("f", None, None)
    c2 = alloc.new("g", None, c1)
    c3 = alloc.new("h", None, c2)
    assert c1.depth == 1
    assert c3.depth == 3


def test_context_suffix_unique():
    alloc = ContextAllocator()
    a = alloc.new("f", None, None)
    b = alloc.new("f", None, None)
    assert a.suffix() != b.suffix()


def test_rename_var_root_is_identity():
    assert rename_var("x.0", None) == "x.0"


def test_clone_term_renames_everything():
    alloc = ContextAllocator()
    ctx = alloc.new("f", None, None)
    term = T.and_(T.bool_var("a"), T.eq(T.int_var("x"), T.const(1)))
    cloned = clone_term(term, ctx)
    assert cloned.variables() == {f"a{ctx.suffix()}", f"x{ctx.suffix()}"}


def test_clone_term_root_identity():
    term = T.bool_var("a")
    assert clone_term(term, None) is term


def test_clones_of_same_term_disjoint():
    alloc = ContextAllocator()
    term = T.eq(T.int_var("x"), T.int_var("y"))
    c1 = clone_term(term, alloc.new("f", None, None))
    c2 = clone_term(term, alloc.new("f", None, None))
    assert not (c1.variables() & c2.variables())


# ----------------------------------------------------------------------
# Summaries helpers
# ----------------------------------------------------------------------
def test_interface_params_order():
    prepared = prepare_source(
        """
        fn callee(q, v) { x = *q; *q = v; return x; }
        fn caller(p, v) { r = callee(p, v); return r; }
        """
    )
    callee = prepared["callee"].function
    iface = interface_params(callee)
    # Original params first, aux params appended.
    assert iface[: len(callee.params)] == callee.params
    assert len(iface) == len(callee.params) + len(callee.aux_params)
    # Call-site argument count matches the interface.
    caller = prepared["caller"].function
    call = next(
        i for i in caller.all_instrs() if isinstance(i, cfg.Call)
    )
    assert len(call.args) == len(iface)


def test_return_slots_and_receivers_align():
    prepared = prepare_source(
        """
        fn callee(q, v) { *q = v; return v; }
        fn caller(p, v) { r = callee(p, v); return r; }
        """
    )
    callee = prepared["callee"].function
    slots = return_slots(callee)
    assert len(slots) >= 2  # main value + aux return for *q
    caller = prepared["caller"].function
    call = next(i for i in caller.all_instrs() if isinstance(i, cfg.Call))
    assert receiver_for_slot(call, 0) == call.dest
    for extra_slot in range(1, len(slots)):
        receiver = receiver_for_slot(call, extra_slot)
        assert receiver in call.extra_receivers
    assert receiver_for_slot(call, 99) is None


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def test_location_str():
    assert str(Location("f", 3, "x")) == "f:3 (x)"
    assert str(Location("f", 3)) == "f:3"


def test_bug_report_key_dedup():
    a = BugReport("c", Location("f", 1, "x"), Location("f", 2, "y"))
    b = BugReport("c", Location("f", 1, "x"), Location("f", 2, "y"), condition="other")
    assert a.key() == b.key()


def test_bug_report_str():
    report = BugReport(
        "use-after-free",
        Location("f", 1, "p"),
        Location("g", 2, "q"),
        path=(Location("f", 1, "p"),),
    )
    text = str(report)
    assert "use-after-free" in text
    assert "f:1" in text and "g:2" in text


def test_check_result_iteration_and_len():
    result = CheckResult("c", [BugReport("c", Location("f", 1), Location("f", 2))])
    assert len(result) == 1
    assert list(result)[0].checker == "c"
    assert "c:" in result.summary_line()


def test_engine_stats_as_dict():
    stats = EngineStats(functions=3)
    payload = stats.as_dict()
    assert payload["functions"] == 3
    assert "smt_queries" in payload


def test_engine_stats_as_dict_is_complete():
    # Regression: as_dict() used to hand-enumerate fields and silently
    # drop newly-added ones.  It must cover every dataclass field.
    import dataclasses

    payload = EngineStats().as_dict()
    field_names = {f.name for f in dataclasses.fields(EngineStats)}
    assert set(payload) == field_names
    assert "summary_hits" in payload and "summary_misses" in payload


def test_engine_stats_publish_mirrors_every_field():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    stats = EngineStats(functions=2, smt_queries=5, summary_hits=3)
    stats.publish("uaf", registry=registry)
    dump = registry.as_dict()
    assert dump["engine.functions"]["values"][0]["value"] == 2
    assert dump["engine.smt_queries"]["values"][0]["value"] == 5
    assert "engine.summaries.hit" in dump
    # Timings land as phase-labeled engine.seconds samples.
    phases = {
        tuple(sorted(v["labels"].items()))
        for v in dump["engine.seconds"]["values"]
    }
    assert any(("phase", "solving") in labels for labels in phases)


def test_summary_line_stable_format():
    import re

    stats = EngineStats(candidates=4, pruned_linear=1, pruned_smt=2)
    result = CheckResult(
        "null-deref",
        [BugReport("null-deref", Location("f", 1), Location("f", 2))],
        stats=stats,
    )
    line = result.summary_line()
    assert line == (
        "null-deref: 1 reports (4 candidates, 1 pruned by linear solver, "
        "2 pruned by SMT)"
    )
    pattern = (
        r"^(?P<checker>[^:]+): (?P<reports>\d+) reports "
        r"\((?P<cand>\d+) candidates, (?P<lin>\d+) pruned by linear solver, "
        r"(?P<smt>\d+) pruned by SMT\)"
        r"(?: \[degraded: (?P<diags>\d+) diagnostic\(s\)\])?$"
    )
    assert re.match(pattern, line)
    # Degraded runs append the suffix — still matching the grammar.
    from repro.robust.diagnostics import Diagnostic

    result.diagnostics.append(Diagnostic("smt", "f", "timeout"))
    degraded = result.summary_line()
    assert degraded.endswith("[degraded: 1 diagnostic(s)]")
    assert re.match(pattern, degraded)


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
def test_callgraph_bottom_up_order():
    module = lower_program(
        parse_program(
            """
            fn a() { b(); c(); return 0; }
            fn b() { c(); return 0; }
            fn c() { return 0; }
            """
        )
    )
    graph = CallGraph(module)
    order = graph.bottom_up_order()
    assert order.index("c") < order.index("b") < order.index("a")


def test_callgraph_scc_detection():
    module = lower_program(
        parse_program(
            """
            fn even(n) { r = odd(n); return r; }
            fn odd(n) { r = even(n); return r; }
            fn main() { r = even(4); return r; }
            """
        )
    )
    graph = CallGraph(module)
    assert graph.is_recursive_call("even", "odd")
    assert graph.is_recursive_call("odd", "even")
    assert not graph.is_recursive_call("main", "even")
    assert graph.is_recursive_call("main", "main")  # self by definition


def test_callgraph_ignores_external_calls():
    module = lower_program(parse_program("fn f() { g_external(); return 0; }"))
    graph = CallGraph(module)
    assert graph.callees["f"] == set()


def test_callgraph_call_sites_recorded():
    module = lower_program(
        parse_program("fn f() { return 0; } fn g() { f(); f(); return 0; }")
    )
    graph = CallGraph(module)
    assert len(graph.call_sites["f"]) == 2


# ----------------------------------------------------------------------
# Dot export
# ----------------------------------------------------------------------
def test_cfg_to_dot_structure():
    prepared = prepare_source(
        "fn f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }"
    )
    dot = cfg_to_dot(prepared["f"].function)
    assert dot.startswith('digraph "f_cfg"')
    assert '"entry"' in dot
    assert "->" in dot
    assert dot.rstrip().endswith("}")


def test_seg_to_dot_structure():
    from repro.seg.builder import build_seg

    prepared = prepare_source(
        "fn f(a, c) { p = malloc(); if (c > 0) { *p = a; } x = *p; return x; }"
    )
    dot = seg_to_dot(build_seg(prepared["f"]))
    assert dot.startswith('digraph "f_seg"')
    assert "style=dashed" in dot  # control dependence edge
    assert "->" in dot


def test_seg_to_dot_escapes_quotes():
    from repro.seg.builder import build_seg

    prepared = prepare_source("fn f(a) { x = a; return x; }")
    dot = seg_to_dot(build_seg(prepared["f"]))
    # Every label is quoted without breaking the dot syntax.
    assert dot.count('"') % 2 == 0
