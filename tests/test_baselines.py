"""Tests for the baseline analyses (SVF-layered, dense IFDS, intra-unit)."""

from repro import Pinpoint, UseAfterFreeChecker
from repro.baselines.ifds import IFDSBaseline
from repro.baselines.intraunit import IntraUnitBaseline
from repro.baselines.svf import SVFBaseline
from repro.pta.andersen import AndersenAnalysis
from repro.ir.lower import lower_program
from repro.ir.ssa import to_ssa
from repro.lang.parser import parse_program


UAF_SIMPLE = """
fn main() {
    p = malloc();
    free(p);
    x = *p;
    return x;
}
"""

FP_TRAP = """
fn main(c) {
    p = malloc();
    t = c > 0;
    if (t) { free(p); }
    if (!t) { x = *p; return x; }
    return 0;
}
"""

CROSS_UNIT = """
fn release(p) { free(p); return 0; }
fn main() {
    p = malloc();
    release(p);
    x = *p;
    return x;
}
"""


# ----------------------------------------------------------------------
# Andersen
# ----------------------------------------------------------------------
def build_module(source: str):
    module = lower_program(parse_program(source))
    for function in module:
        to_ssa(function)
    return module


def test_andersen_malloc_target():
    module = build_module("fn f() { p = malloc(); q = p; return q; }")
    andersen = AndersenAnalysis(module).run()
    func = module["f"]
    p_var = next(
        i.dest for i in func.all_instrs() if i.__class__.__name__ == "Malloc"
    )
    assert andersen.points_to("f", p_var)


def test_andersen_store_load_aliasing():
    module = build_module(
        """
        fn f() {
            holder = malloc();
            p = malloc();
            *holder = p;
            q = *holder;
            return q;
        }
        """
    )
    andersen = AndersenAnalysis(module).run()
    func = module["f"]
    loads = [i for i in func.all_instrs() if i.__class__.__name__ == "Load"]
    assert loads
    assert andersen.points_to("f", loads[0].dest)


def test_andersen_interprocedural_flow():
    module = build_module(
        """
        fn id(p) { return p; }
        fn f() { p = malloc(); q = id(p); return q; }
        """
    )
    andersen = AndersenAnalysis(module).run()
    func = module["f"]
    call = next(i for i in func.all_instrs() if i.__class__.__name__ == "Call")
    assert andersen.points_to("f", call.dest)


def test_andersen_merges_unrelated_contexts():
    # The hallmark imprecision: two callers of the same callee see each
    # other's allocations (context-insensitive merge).
    module = build_module(
        """
        fn id(p) { return p; }
        fn f() { a = malloc(); x = id(a); return x; }
        fn g() { b = malloc(); y = id(b); return y; }
        """
    )
    andersen = AndersenAnalysis(module).run()
    x = next(
        i.dest for i in module["f"].all_instrs() if i.__class__.__name__ == "Call"
    )
    heap_objects = {
        obj
        for obj in andersen.points_to("f", x)
        if obj.__class__.__name__ == "AllocObject"
    }
    assert len(heap_objects) == 2  # both allocations, conflated


# ----------------------------------------------------------------------
# SVF baseline
# ----------------------------------------------------------------------
def test_svf_finds_simple_uaf():
    reports = SVFBaseline.from_source(UAF_SIMPLE).check(UseAfterFreeChecker())
    assert len(reports) >= 1


def test_svf_reports_fp_trap():
    # Path-insensitive: the contradictory-branch trap IS reported.
    reports = SVFBaseline.from_source(FP_TRAP).check(UseAfterFreeChecker())
    assert len(reports) >= 1
    # ... while Pinpoint prunes it.
    pinpoint = Pinpoint.from_source(FP_TRAP).check(UseAfterFreeChecker())
    assert len(pinpoint) == 0


def test_svf_overapproximates_vs_pinpoint():
    # Two unrelated pointers flowing through shared memory: the layered
    # design conflates them and reports more warnings than Pinpoint.
    source = """
    fn main(c) {
        slot = malloc();
        p = malloc();
        q = malloc();
        t = c > 0;
        if (t) { *slot = p; } else { *slot = q; }
        if (t) { free(p); }
        r = *slot;
        if (!t) { x = *r; return x; }
        return 0;
    }
    """
    svf_reports = SVFBaseline.from_source(source).check(UseAfterFreeChecker())
    pinpoint = Pinpoint.from_source(source).check(UseAfterFreeChecker())
    assert len(svf_reports) > len(pinpoint)


def test_svf_stats_populated():
    baseline = SVFBaseline.from_source(CROSS_UNIT).build()
    assert baseline.stats.nodes > 0
    assert baseline.stats.edges > 0
    assert baseline.stats.pts_size > 0


def test_svf_finds_cross_unit():
    reports = SVFBaseline.from_source(CROSS_UNIT).check(UseAfterFreeChecker())
    assert len(reports) >= 1


# ----------------------------------------------------------------------
# IFDS dense baseline
# ----------------------------------------------------------------------
def test_ifds_finds_simple_uaf():
    reports = IFDSBaseline.from_source(UAF_SIMPLE).check_use_after_free()
    assert len(reports) >= 1


def test_ifds_reports_fp_trap():
    reports = IFDSBaseline.from_source(FP_TRAP).check_use_after_free()
    assert len(reports) >= 1


def test_ifds_cross_function():
    reports = IFDSBaseline.from_source(
        """
        fn deref(p) { x = *p; return x; }
        fn main() { p = malloc(); free(p); y = deref(p); return y; }
        """
    ).check_use_after_free()
    assert len(reports) >= 1


def test_ifds_propagation_counts_density():
    # Dense: propagation count scales with statements, not with the
    # number of value-flow edges.
    baseline = IFDSBaseline.from_source(UAF_SIMPLE)
    baseline.check_use_after_free()
    assert baseline.stats.propagations > 0


# ----------------------------------------------------------------------
# Intra-unit (Infer/CSA) baseline
# ----------------------------------------------------------------------
def test_intraunit_finds_local_uaf():
    reports = IntraUnitBaseline.from_source(UAF_SIMPLE).check(UseAfterFreeChecker())
    assert len(reports) == 1


def test_intraunit_misses_cross_unit():
    # The defining weakness the paper shows in Table 3.
    reports = IntraUnitBaseline.from_source(CROSS_UNIT).check(UseAfterFreeChecker())
    assert len(reports) == 0


def test_intraunit_reports_fp_trap():
    reports = IntraUnitBaseline.from_source(FP_TRAP).check(UseAfterFreeChecker())
    assert len(reports) == 1


def test_intraunit_respects_flow_order():
    reports = IntraUnitBaseline.from_source(
        """
        fn main() {
            p = malloc();
            x = *p;
            free(p);
            return x;
        }
        """
    ).check(UseAfterFreeChecker())
    assert len(reports) == 0
