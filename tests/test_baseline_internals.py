"""Deeper tests of the baseline analyses' internals."""

from repro.baselines.ifds import IFDSBaseline, _CopyClasses
from repro.baselines.svf import SVFBaseline
from repro.core.checkers import UseAfterFreeChecker
from repro.ir import cfg
from repro.ir.lower import lower_program
from repro.ir.ssa import to_ssa
from repro.lang.parser import parse_program


def build_module(source: str):
    module = lower_program(parse_program(source))
    for function in module:
        to_ssa(function)
    return module


# ----------------------------------------------------------------------
# Copy classes (IFDS alias approximation)
# ----------------------------------------------------------------------
def test_copy_classes_union_through_assigns():
    module = build_module("fn f(a) { b = a; c = b; d = 7; return c; }")
    classes = _CopyClasses(module["f"])
    assert classes.same("a.0", "c.0")
    assert not classes.same("a.0", "d.0")


def test_copy_classes_union_through_phi():
    module = build_module(
        "fn f(a, b, c) { if (c > 0) { x = a; } else { x = b; } return x; }"
    )
    function = module["f"]
    classes = _CopyClasses(function)
    phi = next(i for i in function.all_instrs() if isinstance(i, cfg.Phi))
    # Phi merges both operands into one class (coarse, as intended).
    assert classes.same(phi.dest, "a.0")
    assert classes.same(phi.dest, "b.0")


def test_copy_classes_members():
    module = build_module("fn f(a) { b = a; return b; }")
    classes = _CopyClasses(module["f"])
    members = classes.members("a.0", ["a.0", "b.0"])
    assert set(members) == {"a.0", "b.0"}


# ----------------------------------------------------------------------
# IFDS summaries
# ----------------------------------------------------------------------
def test_ifds_returns_dangling_summary():
    baseline = IFDSBaseline.from_source(
        """
        fn make() { p = malloc(); free(p); return p; }
        fn main() { q = make(); x = *q; return x; }
        """
    )
    reports = baseline.check_use_after_free()
    assert any(r.source.function == "main" for r in reports)


def test_ifds_frees_param_summary_transitive():
    baseline = IFDSBaseline.from_source(
        """
        fn inner(p) { free(p); return 0; }
        fn outer(p) { inner(p); return 0; }
        fn main() { q = malloc(); outer(q); x = *q; return x; }
        """
    )
    reports = baseline.check_use_after_free()
    assert reports


def test_ifds_rounds_bounded():
    baseline = IFDSBaseline.from_source(
        """
        fn a(p) { b(p); return 0; }
        fn b(p) { a(p); return 0; }
        fn main() { q = malloc(); a(q); return 0; }
        """
    )
    baseline.check_use_after_free()  # mutual recursion must terminate
    assert baseline.stats.rounds <= 20


def test_ifds_stats_track_density():
    baseline = IFDSBaseline.from_source(
        "fn main() { p = malloc(); free(p); x = *p; return x; }"
    )
    baseline.check_use_after_free()
    assert baseline.stats.propagations > 0
    assert baseline.stats.seconds >= 0


# ----------------------------------------------------------------------
# SVF internals
# ----------------------------------------------------------------------
def test_svf_build_idempotent():
    baseline = SVFBaseline.from_source(
        "fn main() { p = malloc(); free(p); x = *p; return x; }"
    )
    baseline.build()
    edges_first = baseline.stats.edges
    baseline.build()  # second call is a no-op
    assert baseline.stats.edges == edges_first


def test_svf_edges_quadratic_in_shared_object_traffic():
    # The pointer-trap pattern: every user stores a pointer through the
    # shared helper and dereferences what comes back.  Context-insensitive
    # points-to conflates all slots, so every user's load reads every
    # object — store-load SVFG edges grow quadratically in users.
    def program(n):
        parts = [
            "fn put(s, v) { *s = v; return 0; }",
            "fn get(s) { v = *s; return v; }",
        ]
        for i in range(n):
            parts.append(
                f"fn user{i}(a) {{\n"
                "    slot = malloc();\n"
                "    p = malloc();\n"
                "    *p = a;\n"
                "    put(slot, p);\n"
                "    r = get(slot);\n"
                "    x = *r;\n"
                "    return x;\n"
                "}"
            )
        return "\n".join(parts)

    small = SVFBaseline.from_source(program(5)).build()
    large = SVFBaseline.from_source(program(20)).build()
    # 4x the users -> super-linear edge growth through the shared helpers.
    assert large.stats.edges > small.stats.edges * 6


def test_svf_flow_insensitivity_reports_use_before_free():
    # A documented imprecision of the condition-free, flow-insensitive
    # traversal: it cannot order the use before the free, so even this
    # correct program draws a warning (it counts toward the baseline's
    # near-100% FP rate, as in the paper's Table 1).
    baseline = SVFBaseline.from_source(
        "fn main(a) { p = malloc(); *p = a; x = *p; free(p); return x; }"
    )
    assert len(baseline.check(UseAfterFreeChecker())) >= 1


def test_svf_taint_checker_anchor_mode():
    from repro.core.checkers import PathTraversalChecker

    baseline = SVFBaseline.from_source(
        """
        fn main(n) {
            data = fgetc();
            f = fopen(data);
            return f;
        }
        """
    )
    reports = baseline.check(PathTraversalChecker())
    assert len(reports) >= 1


def test_svf_silent_on_program_without_frees():
    baseline = SVFBaseline.from_source(
        "fn main(a) { p = malloc(); *p = a; x = *p; return x; }"
    )
    assert baseline.check(UseAfterFreeChecker()) == []
