"""The unified supervision policy: backoff, budgets, escalation.

Contract under test: every supervised retry in the repo — pool
resubmits, isolation attempts, cache/journal I/O — walks the same
deterministic ladder (retry → isolate → quarantine) with capped
exponential backoff and hash-derived (never random) jitter, and every
rung shows up in the ``sched.retries`` counter.
"""

import errno

import pytest

from repro.cache.store import SummaryStore
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.robust.faults import install_faults, reset_faults
from repro.robust.retry import (
    ACTION_ISOLATE,
    ACTION_QUARANTINE,
    ACTION_RETRY,
    RetryPolicy,
    RetrySupervisor,
    with_retries,
)


@pytest.fixture(autouse=True)
def _clean_state():
    reset_faults()
    set_registry(MetricsRegistry())
    yield
    reset_faults()
    set_registry(MetricsRegistry())


def _retries_total():
    return get_registry().counter("sched.retries").total()


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_delay_is_deterministic_and_capped():
    policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
    first = policy.delay("helper", 1)
    assert first == policy.delay("helper", 1)  # no randomness
    assert 0.1 <= first <= 0.15
    # exponential growth, hard cap
    assert policy.delay("helper", 2) > first
    assert policy.delay("helper", 10) == 1.0
    # jitter spreads distinct units apart
    assert policy.delay("helper", 1) != policy.delay("other", 1)


def test_decide_walks_the_ladder():
    policy = RetryPolicy(max_retries=2, isolate_retries=1)
    assert [policy.decide(n) for n in (1, 2, 3, 4, 5)] == [
        ACTION_RETRY,
        ACTION_RETRY,
        ACTION_ISOLATE,
        ACTION_QUARANTINE,
        ACTION_QUARANTINE,
    ]
    assert policy.total_attempts == 4


def test_supervisor_charges_per_unit_and_sleeps_backoff():
    slept = []
    supervisor = RetrySupervisor(
        RetryPolicy(max_retries=1, isolate_retries=1, base_delay=0.01),
        sleep=slept.append,
    )
    assert supervisor.record_failure("a") == ACTION_RETRY
    assert supervisor.record_failure("b") == ACTION_RETRY  # separate budget
    assert supervisor.record_failure("a") == ACTION_ISOLATE
    assert supervisor.record_failure("a") == ACTION_QUARANTINE
    # two retries + one isolation slept; quarantine did not
    assert len(slept) == 3
    assert _retries_total() == 3


# ----------------------------------------------------------------------
# with_retries
# ----------------------------------------------------------------------
def test_with_retries_recovers_from_transient_failures():
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError(errno.ENOSPC, "full")
        return "ok"

    result = with_retries(
        flaky,
        unit="x",
        policy=RetryPolicy(max_retries=1, isolate_retries=1),
        sleep=lambda _s: None,
    )
    assert result == "ok"
    assert len(attempts) == 3
    assert _retries_total() == 2


def test_with_retries_reraises_when_budget_exhausted():
    def always_fails():
        raise OSError(errno.EIO, "gone")

    with pytest.raises(OSError):
        with_retries(
            always_fails,
            policy=RetryPolicy(max_retries=1, isolate_retries=0),
            sleep=lambda _s: None,
        )


def test_with_retries_does_not_retry_deterministic_errors():
    attempts = []

    def broken():
        attempts.append(1)
        raise TypeError("never transient")

    with pytest.raises(TypeError):
        with_retries(broken, sleep=lambda _s: None)
    assert len(attempts) == 1
    assert _retries_total() == 0


# ----------------------------------------------------------------------
# Cache I/O rides the same policy (disk-full fault site)
# ----------------------------------------------------------------------
def test_store_put_retries_through_injected_disk_full(tmp_path):
    install_faults("disk-full*2")
    store = SummaryStore(str(tmp_path / "cache"))
    assert store.put("ab" * 32, "fn", {"artifact": 1}) is True
    assert store.get("ab" * 32) is not None
    assert _retries_total() >= 2


def test_store_put_degrades_when_disk_stays_full(tmp_path):
    install_faults("disk-full")  # unlimited: every attempt fails
    store = SummaryStore(str(tmp_path / "cache"))
    assert store.put("cd" * 32, "fn", {"artifact": 1}) is False
    reset_faults()
    assert store.get("cd" * 32) is None  # nothing half-written
