"""Round-trip tests for the pretty-printer."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.synth.generator import GeneratorConfig, generate_program
from repro.synth.juliet import generate_juliet_suite, suite_source


def _normalize(node):
    """Structural view of an AST ignoring line numbers."""
    if isinstance(node, ast.Program):
        return ("program", tuple(_normalize(f) for f in node.functions))
    if isinstance(node, ast.FuncDef):
        return ("fn", node.name, tuple(node.params), _normalize(node.body))
    if isinstance(node, ast.Block):
        return ("block", tuple(_normalize(s) for s in node.stmts))
    if isinstance(node, ast.AssignStmt):
        return ("assign", node.target, _normalize(node.value))
    if isinstance(node, ast.StoreStmt):
        return ("store", node.depth, _normalize(node.pointer), _normalize(node.value))
    if isinstance(node, ast.IfStmt):
        return (
            "if",
            _normalize(node.cond),
            _normalize(node.then_block),
            _normalize(node.else_block) if node.else_block else None,
        )
    if isinstance(node, ast.WhileStmt):
        return ("while", _normalize(node.cond), _normalize(node.body))
    if isinstance(node, ast.ReturnStmt):
        return ("return", _normalize(node.value) if node.value else None)
    if isinstance(node, ast.ExprStmt):
        return ("expr", _normalize(node.expr))
    if isinstance(node, ast.Name):
        return ("name", node.ident)
    if isinstance(node, ast.Num):
        return ("num", node.value)
    if isinstance(node, ast.Unary):
        return ("unary", node.op, _normalize(node.operand))
    if isinstance(node, ast.Binary):
        return ("binary", node.op, _normalize(node.lhs), _normalize(node.rhs))
    if isinstance(node, ast.Call):
        return ("call", node.callee, tuple(_normalize(a) for a in node.args))
    raise AssertionError(f"unknown node {node!r}")


def roundtrip(source: str):
    first = parse_program(source)
    printed = pretty_program(first)
    second = parse_program(printed)
    assert _normalize(first) == _normalize(second), printed
    return printed


def test_roundtrip_simple():
    roundtrip("fn f(a) { x = a + 1; return x; }")


def test_roundtrip_stores_loads():
    roundtrip("fn f(p, v) { *p = v; **p = v; x = **p; return x; }")


def test_roundtrip_control_flow():
    roundtrip(
        """
        fn f(a, b) {
            if (a > 0) {
                if (b > 0) { x = 1; } else { x = 2; }
            } else {
                x = 3;
            }
            while (x < 10) { x = x + 1; }
            return x;
        }
        """
    )


def test_roundtrip_calls():
    roundtrip(
        """
        fn g(a, b) { return a; }
        fn f(p) { free(p); r = g(p, 1 + 2); return r; }
        """
    )


def test_roundtrip_operators():
    roundtrip(
        "fn f(a, b) { x = a * b + a / b - a % b; y = !x && a || b; return y; }"
    )


def test_roundtrip_unary():
    roundtrip("fn f(a) { x = -a; y = !a; z = *a; return z; }")


def test_roundtrip_precedence_preserved():
    # The printer parenthesizes everything, so re-parsing preserves the
    # original grouping even against precedence.
    printed = roundtrip("fn f(a, b) { x = (a + b) * 2; return x; }")
    assert "(a + b)" in printed.replace("((", "(").replace("))", ")")


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_roundtrip_generated_programs(seed):
    program = generate_program(GeneratorConfig(seed=seed, target_lines=300))
    roundtrip(program.source)


def test_roundtrip_juliet_suite():
    roundtrip(suite_source(generate_juliet_suite()))


def test_pretty_output_is_formatted():
    printed = pretty_program(parse_program("fn f(a) { if (a) { x = 1; } return 0; }"))
    assert "    if" in printed  # indented
    assert printed.endswith("}\n")
