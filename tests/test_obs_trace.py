"""Span tracing: nesting, determinism, no-op discipline, Chrome export."""

import json
import threading

from repro.obs.clock import ManualClock
from repro.obs.profiling import pass_table, self_times, unit_table
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    get_tracer,
    set_tracer,
    trace,
    traced,
)


def make_tracer(tick=1.0):
    return Tracer(clock=ManualClock(tick=tick), enabled=True)


# ----------------------------------------------------------------------
# Nesting and ordering
# ----------------------------------------------------------------------
def test_nested_spans_link_to_parent():
    tracer = make_tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    # Spans land in completion order: inner closes first.
    inner, outer = tracer.spans
    assert inner.name == "inner" and outer.name == "outer"
    assert inner.parent == outer.uid
    assert outer.parent is None
    assert outer.uid < inner.uid  # uids allocated at entry


def test_sibling_spans_share_parent():
    tracer = make_tracer()
    with tracer.span("outer"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    a, b, outer = tracer.spans
    assert a.parent == outer.uid and b.parent == outer.uid
    assert a.end <= b.start  # ordered by the clock


def test_manual_clock_durations_are_deterministic():
    tracer = make_tracer(tick=1.0)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = tracer.spans
    # clock reads: outer start=0, inner start=1, inner end=2, outer end=3
    assert inner.start == 1.0 and inner.duration == 1.0
    assert outer.start == 0.0 and outer.duration == 3.0


def test_self_time_subtracts_direct_children():
    tracer = make_tracer(tick=1.0)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = tracer.spans
    selfs = self_times(tracer.spans)
    assert selfs[inner.uid] == inner.duration
    assert selfs[outer.uid] == outer.duration - inner.duration


def test_span_records_unit_args_and_error():
    tracer = make_tracer()
    with tracer.span("pass", unit="fn", custom=7) as span:
        span.set(extra="x")
    recorded = tracer.spans[0]
    assert recorded.unit == "fn"
    assert recorded.args == {"custom": 7, "extra": "x"}

    try:
        with tracer.span("boom"):
            raise RuntimeError("no")
    except RuntimeError:
        pass
    assert tracer.spans[-1].args["error"] == "RuntimeError"


def test_spans_from_threads_do_not_cross_link():
    tracer = make_tracer()
    done = threading.Event()

    def worker():
        with tracer.span("worker"):
            done.wait(1)

    with tracer.span("main"):
        t = threading.Thread(target=worker)
        t.start()
        done.set()
        t.join()
    worker_span = next(s for s in tracer.spans if s.name == "worker")
    # The worker thread has its own stack: no parent from the main thread.
    assert worker_span.parent is None


# ----------------------------------------------------------------------
# Disabled discipline
# ----------------------------------------------------------------------
def test_disabled_tracer_returns_shared_null_span():
    tracer = Tracer(enabled=False)
    handle = tracer.span("anything")
    assert handle is NULL_SPAN
    with handle as span:
        span.set(ignored=1)
    assert tracer.spans == []


def test_global_trace_respects_enablement():
    old = get_tracer()
    try:
        tracer = set_tracer(Tracer(clock=ManualClock(tick=1.0)))
        assert trace("x") is NULL_SPAN
        tracer.enabled = True
        with trace("x"):
            pass
        assert [s.name for s in tracer.spans] == ["x"]
    finally:
        set_tracer(old)


def test_traced_decorator_checks_enablement_per_call():
    old = get_tracer()
    try:
        tracer = set_tracer(Tracer(clock=ManualClock(tick=1.0)))

        @traced("deco.pass", unit="u")
        def work():
            return 5

        assert work() == 5
        assert tracer.spans == []  # disabled at call time
        tracer.enabled = True
        assert work() == 5
        assert tracer.spans[0].name == "deco.pass"
        assert tracer.spans[0].unit == "u"
    finally:
        set_tracer(old)


# ----------------------------------------------------------------------
# Chrome export (golden)
# ----------------------------------------------------------------------
def test_chrome_trace_structure_and_golden():
    tracer = make_tracer(tick=0.5)
    with tracer.span("parse", unit="<module>"):
        with tracer.span("seg.build", unit="main"):
            pass
    doc = tracer.to_chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    meta, *events = doc["traceEvents"]
    assert meta["ph"] == "M" and meta["args"]["name"] == "repro"
    # Events are sorted by start time, not completion order.
    assert [e["name"] for e in events] == ["parse", "seg.build"]
    parse, seg = events
    # Deterministic clock -> byte-stable golden values (microseconds).
    assert parse["ts"] == 0.0 and parse["dur"] == 1_500_000.0
    assert seg["ts"] == 500_000.0 and seg["dur"] == 500_000.0
    assert seg["cat"] == "seg"
    assert seg["args"]["unit"] == "main"
    assert all(e["ph"] == "X" and e["pid"] == 1 for e in events)
    # Round-trips through JSON.
    assert json.loads(tracer.to_chrome_json()) == doc


def test_write_chrome_trace_is_valid_json(tmp_path):
    tracer = make_tracer()
    with tracer.span("a"):
        pass
    target = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(target))
    doc = json.loads(target.read_text())
    assert {e["name"] for e in doc["traceEvents"]} >= {"a"}


def test_summary_digest():
    tracer = make_tracer()
    for _ in range(3):
        with tracer.span("smt.check"):
            pass
    digest = tracer.summary()
    assert digest["spans"] == 3
    assert digest["passes"]["smt.check"]["count"] == 3
    assert digest["passes"]["smt.check"]["seconds"] > 0


def test_clear_resets_spans():
    tracer = make_tracer()
    with tracer.span("a"):
        pass
    tracer.clear()
    assert tracer.spans == []


# ----------------------------------------------------------------------
# Profiling aggregation
# ----------------------------------------------------------------------
def test_pass_table_aggregates_by_name():
    tracer = make_tracer(tick=1.0)
    for unit in ("f", "g"):
        with tracer.span("seg.build", unit=unit):
            pass
    rows = pass_table(tracer.spans)
    assert len(rows) == 1
    assert rows[0].name == "seg.build"
    assert rows[0].count == 2
    assert rows[0].total_seconds == 2.0


def test_unit_table_charges_nested_passes_once():
    tracer = make_tracer(tick=1.0)
    with tracer.span("prepare.fn", unit="f"):
        with tracer.span("pta.run", unit="f"):
            pass
    with tracer.span("checker.fn", unit="f") as span:
        span.set(smt_queries=4)
    rows = unit_table(tracer.spans)
    assert len(rows) == 1
    row = rows[0]
    total = sum(s.duration for s in tracer.spans if s.parent is None)
    # Self times over all of f's spans add up to exactly the traced time.
    assert row.self_seconds == total
    assert row.smt_queries == 4
    assert set(row.passes) == {"prepare.fn", "pta.run", "checker.fn"}


# ----------------------------------------------------------------------
# Absorbing worker spans (how scheduler workers report)
# ----------------------------------------------------------------------
def test_absorb_remaps_uids_and_keeps_parent_links():
    parent_tracer = make_tracer()
    with parent_tracer.span("lower", unit="<module>"):
        pass
    local_uids = {span.uid for span in parent_tracer.spans}

    worker = make_tracer()
    with worker.span("sched.worker", unit="helper"):
        with worker.span("prepare.fn", unit="helper"):
            pass
    parent_tracer.absorb(worker.spans)

    assert len(parent_tracer.spans) == 3
    absorbed = parent_tracer.spans[1:]
    by_name = {span.name: span for span in absorbed}
    # Fresh uids, no collision with locally recorded spans.
    assert not local_uids & {span.uid for span in absorbed}
    # The intra-batch parent link survived the remap.
    assert by_name["prepare.fn"].parent == by_name["sched.worker"].uid
    assert by_name["sched.worker"].parent is None
    assert by_name["prepare.fn"].unit == "helper"


def test_absorb_empty_batch_is_a_noop():
    tracer = make_tracer()
    tracer.absorb([])
    assert tracer.spans == []


def test_absorbed_spans_render_in_chrome_trace():
    tracer = make_tracer()
    worker = make_tracer()
    with worker.span("prepare.fn", unit="helper"):
        pass
    tracer.absorb(worker.spans)
    events = tracer.to_chrome_trace()["traceEvents"]
    assert any(
        event.get("name") == "prepare.fn"
        for event in events
        if event.get("ph") == "X"
    )


def test_absorb_reparents_batch_roots_under_given_span():
    tracer = make_tracer()
    with tracer.span("sched.wave", unit="0") as wave:
        wave_uid = wave.uid
    worker = make_tracer()
    with worker.span("sched.worker", unit="f"):
        with worker.span("prepare.fn", unit="f"):
            pass
    with worker.span("sched.worker", unit="g"):
        pass
    tracer.absorb(worker.spans, parent=wave_uid)

    by_key = {(s.name, s.unit): s for s in tracer.spans}
    # Both batch roots hang off the dispatching wave span...
    assert by_key[("sched.worker", "f")].parent == wave_uid
    assert by_key[("sched.worker", "g")].parent == wave_uid
    # ...while the intra-batch child keeps its worker-local parent.
    assert (
        by_key[("prepare.fn", "f")].parent == by_key[("sched.worker", "f")].uid
    )


def test_absorb_preserves_nesting_depth_and_timestamps():
    """Regression: a three-deep worker tree must keep its exact depth and
    monotonic start/end ordering after absorption and re-parenting."""
    tracer = make_tracer()
    with tracer.span("sched.wave", unit="1") as wave:
        wave_uid = wave.uid

    worker = make_tracer()
    with worker.span("sched.worker", unit="f"):
        with worker.span("prepare.fn", unit="f"):
            with worker.span("pta.run", unit="f"):
                pass
    tracer.absorb(worker.spans, parent=wave_uid)

    by_uid = {s.uid: s for s in tracer.spans}

    def depth(span):
        steps = 0
        while span.parent is not None:
            span = by_uid[span.parent]
            steps += 1
        return steps

    by_name = {s.name: s for s in tracer.spans}
    assert depth(by_name["sched.wave"]) == 0
    assert depth(by_name["sched.worker"]) == 1
    assert depth(by_name["prepare.fn"]) == 2
    assert depth(by_name["pta.run"]) == 3
    # Every child starts no earlier and ends no later than its parent
    # (ManualClock ticks monotonically; absorb must not reorder time).
    for span in tracer.spans:
        if span.parent is not None and span.name != "sched.worker":
            parent = by_uid[span.parent]
            assert parent.start <= span.start
            assert span.end <= parent.end
    # Remapped uids are fresh — strictly above every pre-absorb uid.
    assert all(
        s.uid > wave_uid for s in tracer.spans if s.name != "sched.wave"
    )


def test_absorb_without_parent_leaves_roots_free():
    tracer = make_tracer()
    worker = make_tracer()
    with worker.span("sched.worker", unit="f"):
        pass
    tracer.absorb(worker.spans)
    assert tracer.spans[0].parent is None


def test_tracer_trace_id_is_stable_and_overridable():
    tracer = make_tracer()
    minted = tracer.trace_id
    assert len(minted) == 16
    assert tracer.trace_id == minted  # lazy mint, then stable
    seeded = Tracer(enabled=True, trace_id="cafe0123cafe0123")
    assert seeded.trace_id == "cafe0123cafe0123"
