"""Unit tests for Mod/Ref and the connector transformation (Fig. 3)."""

from repro.core.pipeline import prepare_source
from repro.ir import cfg
from repro.ir.lower import lower_function
from repro.ir.ssa import base_name, to_ssa
from repro.lang.parser import parse_function, parse_program
from repro.transform.connectors import (
    transform_call_sites,
    transform_function_interface,
)
from repro.transform.modref import compute_modref


# The paper's motivating example (Fig. 1), in our surface syntax.
FIG1 = """
fn foo(a) {
    ptr = malloc();
    *ptr = a;
    if (t1 > 0) {
        bar(ptr);
    } else {
        qux(ptr);
    }
    f = *ptr;
    if (t2 > 0) { print(*f); }
    return 0;
}

fn bar(q) {
    c = malloc();
    t3 = *q;
    if (t3 != 0) {
        *q = c;
        free(c);
    } else {
        if (t4 > 0) { *q = b; }
    }
    return 0;
}

fn qux(r) {
    if (t5 > 0) { *r = d; } else { *r = e; }
    return 0;
}
"""


def modref_of(source: str):
    scratch = to_ssa(lower_function(parse_function(source)))
    return compute_modref(scratch)


def test_modref_pure_function():
    summary = modref_of("fn f(a) { return a; }")
    assert summary.is_pure()


def test_modref_ref_only():
    summary = modref_of("fn f(q) { x = *q; return x; }")
    assert ("q", 1) in summary.ref
    assert not summary.mod


def test_modref_mod_strongly_updated():
    # *r is written on every path: the initial value never survives, so
    # no aux formal parameter is needed (the paper's qux has only Z).
    summary = modref_of(
        "fn qux(r, d, e) { if (t5 > 0) { *r = d; } else { *r = e; } return 0; }"
    )
    assert ("r", 1) in summary.mod
    assert ("r", 1) not in summary.ref


def test_modref_mod_with_surviving_initial():
    # *q written only under a condition: on the other path the incoming
    # value survives to the return, so both X (ref) and Y (mod) exist —
    # the paper's bar.
    summary = modref_of(
        "fn bar(q, b) { t3 = *q; if (t3 != 0) { *q = b; } return 0; }"
    )
    assert ("q", 1) in summary.mod
    assert ("q", 1) in summary.ref


def test_modref_mod_only_conditional_no_load():
    summary = modref_of("fn f(q, v) { if (c > 0) { *q = v; } return 0; }")
    assert ("q", 1) in summary.mod
    assert ("q", 1) in summary.ref  # initial value survives when !c


def test_modref_depth_closure():
    summary = modref_of("fn f(q, v) { p = *q; *p = v; return 0; }")
    assert ("q", 1) in summary.ref
    assert ("q", 2) in summary.mod


def test_interface_transform_adds_connectors():
    func = lower_function(
        parse_function("fn bar(q, b) { t3 = *q; if (t3 != 0) { *q = b; } return 0; }")
    )
    scratch = to_ssa(
        lower_function(
            parse_function(
                "fn bar(q, b) { t3 = *q; if (t3 != 0) { *q = b; } return 0; }"
            )
        )
    )
    summary = compute_modref(scratch)
    signature = transform_function_interface(func, summary)
    assert ("q", 1) in signature.aux_params
    assert ("q", 1) in signature.aux_returns
    # Entry block starts with the store *(q,1) <- F$q$1.
    entry = func.blocks[func.entry]
    first = entry.instrs[0]
    assert isinstance(first, cfg.Store)
    assert first.pointer.name == "q"
    assert first.value.name == "F$q$1"
    # The return carries the aux return value.
    rets = func.return_instrs()
    assert rets and rets[0].extra_values
    assert rets[0].extra_values[0].name.startswith("R$q$")


def test_call_site_transform():
    program = parse_program(
        """
        fn caller(p, v) { callee(p, v); x = *p; return x; }
        fn callee(q, v) { *q = v; t = *q; return t; }
        """
    )
    callee = lower_function(program.function("callee"))
    scratch = to_ssa(lower_function(program.function("callee")))
    signature = transform_function_interface(callee, compute_modref(scratch))
    caller = lower_function(program.function("caller"))
    transform_call_sites(caller, {"callee": signature})
    instrs = list(caller.all_instrs())
    calls = [i for i in instrs if isinstance(i, cfg.Call)]
    assert len(calls) == 1
    call = calls[0]
    # Extra argument A loaded from *p before the call.
    assert len(call.args) == 2 + len(signature.aux_params)
    loads_before = [
        i for i in instrs if isinstance(i, cfg.Load) and i.dest.startswith("A$")
    ]
    assert len(loads_before) == len(signature.aux_params)
    # Receiver C stored back into *p after the call.
    assert len(call.extra_receivers) == len(signature.aux_returns)
    stores_after = [
        i
        for i in instrs
        if isinstance(i, cfg.Store)
        and isinstance(i.value, cfg.Var)
        and i.value.name.startswith("C$")
    ]
    assert len(stores_after) == len(signature.aux_returns)


def test_pipeline_fig1_example():
    """End-to-end preparation of the paper's Fig. 1 program."""
    prepared = prepare_source(FIG1)
    assert set(prepared.functions) == {"foo", "bar", "qux"}
    # Bottom-up order: callees before foo.
    assert prepared.order.index("bar") < prepared.order.index("foo")
    assert prepared.order.index("qux") < prepared.order.index("foo")

    bar = prepared["bar"]
    # bar reads *q (the t3 = *q load) and writes it: both connectors.
    assert ("q", 1) in bar.signature.aux_params  # X in Fig. 2
    assert ("q", 1) in bar.signature.aux_returns  # Y in Fig. 2

    qux = prepared["qux"]
    # qux strongly updates *r on all paths: only the aux return Z.
    assert ("r", 1) in qux.signature.aux_returns
    assert ("r", 1) not in qux.signature.aux_params

    foo = prepared["foo"]
    # foo's f = *ptr must see the values stored back from bar and qux
    # (the L and M connectors), under complementary branch conditions.
    f_loads = [
        i
        for i in foo.function.all_instrs()
        if isinstance(i, cfg.Load) and base_name(i.dest) == "f"
    ]
    assert len(f_loads) == 1
    values = foo.points_to.load_values[f_loads[0].uid]
    names = {base_name(v.name) for v, _ in values if isinstance(v, cfg.Var)}
    # Receivers of bar's Y and qux's Z aux returns.
    assert any(n.startswith("C$") for n in names), names
    assert len(values) >= 2
    # foo itself is connector-free at its own interface (a is not deref'd
    # ... except through ptr, which is local memory).
    assert foo.signature.aux_params == []


def test_pipeline_recursive_program_no_crash():
    prepared = prepare_source(
        """
        fn f(n) { if (n > 0) { r = f(n - 1); return r; } return 0; }
        """
    )
    assert "f" in prepared


def test_pipeline_mutual_recursion_no_crash():
    prepared = prepare_source(
        """
        fn even(n) { if (n == 0) { return 1; } r = odd(n - 1); return r; }
        fn odd(n) { if (n == 0) { return 0; } r = even(n - 1); return r; }
        """
    )
    assert set(prepared.functions) == {"even", "odd"}
