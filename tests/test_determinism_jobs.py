"""--jobs N determinism: parallel output must equal serial output.

For every ``.pin`` program shipped in ``examples/`` and the malformed
``tests/corpus/`` fixtures, ``repro check --jobs 4`` must emit the same
findings, diagnostics, and stats as ``--jobs 1`` — and the same again
through a warm artifact cache.  The comparison covers the semantic
sections of the JSON document and the SARIF ``results`` array; the
``metrics`` section is excluded by design (it embeds wall-clock timing
histograms and the jobs gauge itself).
"""

import glob
import json
import os

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry, set_registry

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
PROGRAMS = sorted(
    glob.glob(os.path.join(EXAMPLES_DIR, "*.pin"))
    + glob.glob(os.path.join(CORPUS_DIR, "*.pin"))
)
IDS = [os.path.basename(p) for p in PROGRAMS]


@pytest.fixture(autouse=True)
def _fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


def _json_run(path, capsys, *flags):
    set_registry(MetricsRegistry())
    code = main(["check", path, "--all", "--json", *flags])
    document = json.loads(capsys.readouterr().out)
    stats = {
        checker: {
            key: value
            for key, value in per_checker.items()
            # Wall-clock timings are the one legitimately run-dependent
            # part of the stats block.
            if not key.startswith("seconds_")
        }
        for checker, per_checker in document["stats"].items()
    }
    return code, {
        "reports": document["reports"],
        "diagnostics": document["diagnostics"],
        "stats": stats,
    }


def _sarif_results(path, capsys, *flags):
    set_registry(MetricsRegistry())
    code = main(["check", path, "--all", "--sarif", *flags])
    document = json.loads(capsys.readouterr().out)
    runs = document["runs"]
    return code, [run["results"] for run in runs]


def test_corpus_is_nonempty():
    assert len(PROGRAMS) >= 7  # 2+ examples, 5+ corpus fixtures


@pytest.mark.parametrize("path", PROGRAMS, ids=IDS)
def test_json_identical_serial_vs_jobs4(path, capsys):
    serial = _json_run(path, capsys, "--jobs", "1")
    parallel = _json_run(path, capsys, "--jobs", "4")
    assert parallel == serial


@pytest.mark.parametrize("path", PROGRAMS, ids=IDS)
def test_sarif_identical_serial_vs_jobs4(path, capsys):
    serial = _sarif_results(path, capsys, "--jobs", "1")
    parallel = _sarif_results(path, capsys, "--jobs", "4")
    assert parallel == serial


EXAMPLE_PROGRAMS = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.pin")))


@pytest.mark.parametrize(
    "path",
    EXAMPLE_PROGRAMS,
    ids=[os.path.basename(p) for p in EXAMPLE_PROGRAMS],
)
def test_json_identical_through_warm_cache(path, capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    serial = _json_run(path, capsys)
    cold = _json_run(path, capsys, "--cache-dir", cache_dir)
    warm = _json_run(path, capsys, "--cache-dir", cache_dir, "--jobs", "4")
    assert cold == serial
    assert warm == serial


def test_generated_loop_workload_identical(tmp_path, capsys):
    # Regression: loop-gate variable names embed instruction uids, and
    # uids used to be allocated from a process-global counter — worker
    # processes numbered them differently from a serial run, producing
    # conditions like `loop.1485.body2` vs `loop.1583.body2`.  Uids are
    # now scoped per prepared function (cfg.scoped_uids), so a
    # loop-heavy generated workload must come out identical.
    from repro.synth.generator import GeneratorConfig, generate_program

    program = generate_program(GeneratorConfig(seed=9, target_lines=800))
    path = tmp_path / "generated.pin"
    path.write_text(program.source)
    serial = _json_run(str(path), capsys, "--jobs", "1")
    parallel = _json_run(str(path), capsys, "--jobs", "4")
    assert parallel == serial
    conditions = " ".join(r["condition"] for r in serial[1]["reports"])
    assert "loop." in conditions  # the workload really exercises loop gates
