"""Tests for the incremental analyzer."""

import pytest

from repro import UseAfterFreeChecker
from repro.core.incremental import IncrementalAnalyzer

BASE = """
fn helper(p) { x = *p; return x; }
fn other(a) { return a + 1; }
fn main() {
    p = malloc();
    free(p);
    y = helper(p);
    z = other(3);
    return y + z;
}
"""

# Body-only edit in `other` (no interface change).
BODY_EDIT = BASE.replace("return a + 1;", "return a + 2;")

# Interface-changing edit: helper now also writes through p.
INTERFACE_EDIT = BASE.replace(
    "fn helper(p) { x = *p; return x; }",
    "fn helper(p) { x = *p; *p = 0; return x; }",
)


def test_cold_run_analyzes_everything():
    analyzer = IncrementalAnalyzer()
    engine = analyzer.analyze(BASE)
    assert analyzer.last_stats.analyzed == 3
    assert analyzer.last_stats.reused == 0
    assert len(engine.check(UseAfterFreeChecker())) == 1


def test_identical_rerun_reuses_everything():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    engine = analyzer.analyze(BASE)
    assert analyzer.last_stats.analyzed == 0
    assert analyzer.last_stats.reused == 3
    assert len(engine.check(UseAfterFreeChecker())) == 1


def test_whitespace_and_comment_changes_reuse():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    reformatted = "// a leading comment\n" + BASE.replace(
        "fn other(a) { return a + 1; }",
        "fn other(a) {\n    // body comment\n    return a + 1;\n}",
    )
    analyzer.analyze(reformatted)
    assert analyzer.last_stats.analyzed == 0


def test_body_edit_reanalyzes_only_that_function():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    engine = analyzer.analyze(BODY_EDIT)
    assert analyzer.last_stats.analyzed == 1  # just `other`
    assert analyzer.last_stats.reused == 2
    assert len(engine.check(UseAfterFreeChecker())) == 1


def test_interface_edit_invalidates_callers():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    engine = analyzer.analyze(INTERFACE_EDIT)
    # helper changed; its new connector signature invalidates main.
    assert analyzer.last_stats.analyzed == 2
    assert analyzer.last_stats.reused == 1  # `other`
    assert len(engine.check(UseAfterFreeChecker())) == 1


def test_incremental_results_match_full_analysis():
    from repro import Pinpoint

    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    incremental = analyzer.analyze(BODY_EDIT)
    full = Pinpoint.from_source(BODY_EDIT)
    inc_reports = {r.key() for r in incremental.check(UseAfterFreeChecker())}
    full_reports = {r.key() for r in full.check(UseAfterFreeChecker())}
    assert inc_reports == full_reports


def test_new_function_added():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    extended = BASE + "\nfn extra() { q = malloc(); free(q); w = *q; return w; }\n"
    engine = analyzer.analyze(extended)
    assert analyzer.last_stats.analyzed == 1
    assert len(engine.check(UseAfterFreeChecker())) == 2


def test_function_removed():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    reduced = BASE.replace("fn other(a) { return a + 1; }", "").replace(
        "z = other(3);", "z = 3;"
    )
    engine = analyzer.analyze(reduced)
    # main changed (its body references other no more); helper reused.
    assert analyzer.last_stats.reused == 1
    assert len(engine.check(UseAfterFreeChecker())) == 1


def test_invalidate_forces_reanalysis():
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(BASE)
    analyzer.invalidate("other")
    analyzer.analyze(BASE)
    assert analyzer.last_stats.analyzed == 1
    analyzer.invalidate()
    analyzer.analyze(BASE)
    assert analyzer.last_stats.analyzed == 3


def test_incremental_speedup_on_large_program():
    import time

    from repro.synth.generator import GeneratorConfig, generate_program

    program = generate_program(GeneratorConfig(seed=21, target_lines=2000))
    analyzer = IncrementalAnalyzer()
    start = time.perf_counter()
    analyzer.analyze(program.source)
    cold = time.perf_counter() - start
    # Append one new function and re-analyze.
    edited = program.source + "\nfn tweak(a) { return a * 2; }\n"
    start = time.perf_counter()
    analyzer.analyze(edited)
    warm = time.perf_counter() - start
    assert analyzer.last_stats.analyzed == 1
    assert analyzer.last_stats.reused > 100
    # Reuse must pay off; a generous bound keeps this stable under load.
    assert warm < cold, (cold, warm)
