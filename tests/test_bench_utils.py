"""Unit tests for the benchmark harness utilities."""

import math

import pytest

from repro.bench.fitting import fit_linear, fit_power
from repro.bench.metrics import measure, time_only
from repro.bench.tables import render_table


# ----------------------------------------------------------------------
# Fitting
# ----------------------------------------------------------------------
def test_fit_linear_exact():
    xs = [1, 2, 3, 4]
    ys = [3, 5, 7, 9]  # y = 2x + 1
    fit = fit_linear(xs, ys)
    a, b = fit.coefficients
    assert a == pytest.approx(2.0)
    assert b == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(21.0)


def test_fit_linear_noisy():
    xs = list(range(20))
    ys = [2 * x + 1 + ((-1) ** x) * 0.5 for x in xs]
    fit = fit_linear(xs, ys)
    assert fit.r_squared > 0.99
    assert fit.coefficients[0] == pytest.approx(2.0, abs=0.05)


def test_fit_linear_requires_points():
    with pytest.raises(ValueError):
        fit_linear([1], [2])


def test_fit_power_exact_quadratic():
    xs = [1, 2, 4, 8, 16]
    ys = [3 * x**2 for x in xs]
    fit = fit_power(xs, ys)
    a, k = fit.coefficients
    assert k == pytest.approx(2.0, abs=0.01)
    assert a == pytest.approx(3.0, rel=0.01)
    assert fit.r_squared == pytest.approx(1.0, abs=0.01)


def test_fit_power_linear_data():
    xs = [10, 20, 40, 80]
    ys = [5 * x for x in xs]
    fit = fit_power(xs, ys)
    assert fit.coefficients[1] == pytest.approx(1.0, abs=0.01)


def test_fit_power_filters_nonpositive():
    fit = fit_power([0, 1, 2, 4], [0, 2, 4, 8])
    assert fit.coefficients[1] == pytest.approx(1.0, abs=0.01)


def test_fit_power_requires_positive_points():
    with pytest.raises(ValueError):
        fit_power([0, 0], [1, 2])


def test_describe_strings():
    lin = fit_linear([1, 2], [2, 4])
    pow_ = fit_power([1, 2], [2, 4])
    assert "R^2" in lin.describe()
    assert "^" in pow_.describe()


def test_fit_result_predict_unknown_model():
    from repro.bench.fitting import FitResult

    with pytest.raises(ValueError):
        FitResult("cubic", (1.0,), 1.0).predict(2)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_measure_returns_result_and_metrics():
    result, m = measure(lambda: sum(range(10000)))
    assert result == sum(range(10000))
    assert m.seconds >= 0
    assert m.peak_bytes >= 0
    assert m.peak_mb == m.peak_bytes / (1024 * 1024)


def test_measure_tracks_allocation():
    _, small = measure(lambda: [0] * 10)
    _, big = measure(lambda: [0] * 1_000_000)
    assert big.peak_bytes > small.peak_bytes


def test_time_only():
    result, seconds = time_only(lambda: 42)
    assert result == 42
    assert seconds >= 0


def test_measure_nested_inner_does_not_stomp_outer():
    # Regression: an inner measure() used to call tracemalloc.reset_peak()
    # and stop tracing, so the outer frame lost its watermark (and often
    # crashed on stop).  Each frame must now see at least its own
    # allocations, and the outer frame must include the inner ones.
    inner_holder = {}

    def inner_work():
        return [0] * 500_000

    def outer_work():
        before = [0] * 200_000
        result, m = measure(inner_work)
        inner_holder["m"] = m
        return before, result

    (_, _), outer = measure(outer_work)
    inner = inner_holder["m"]
    assert inner.peak_bytes > 0
    # The outer measurement spans the inner allocation plus its own.
    assert outer.peak_bytes >= inner.peak_bytes


def test_measure_nested_leaves_tracemalloc_state():
    import tracemalloc

    assert not tracemalloc.is_tracing()
    measure(lambda: measure(lambda: [0] * 1000))
    # The owner (outermost) frame stops tracing on exit.
    assert not tracemalloc.is_tracing()


def test_measure_inside_preexisting_tracemalloc():
    # If the caller already runs tracemalloc, measure() must not stop it.
    import tracemalloc

    tracemalloc.start()
    try:
        _, m = measure(lambda: [0] * 100_000)
        assert m.peak_bytes > 0
        assert tracemalloc.is_tracing()
    finally:
        tracemalloc.stop()


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def test_render_table_alignment():
    text = render_table(["name", "count"], [("alpha", 1), ("b", 22)])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    assert lines[0].startswith("name")
    # Right-aligned numeric column.
    assert lines[2].endswith("1")
    assert lines[3].endswith("22")


def test_render_table_wide_cells():
    text = render_table(["x"], [("a-very-long-cell",)])
    header, rule, row = text.splitlines()
    assert len(rule) >= len("a-very-long-cell")


def test_render_table_empty_rows():
    text = render_table(["a", "b"], [])
    assert len(text.splitlines()) == 2
