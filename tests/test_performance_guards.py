"""Performance regression guards.

Generous wall-clock bounds that only trip on order-of-magnitude
regressions (an accidental quadratic loop, a lost memo table), not on
machine noise.
"""

import time

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.synth.generator import GeneratorConfig, generate_program


def test_thousand_line_program_under_budget():
    program = generate_program(GeneratorConfig(seed=99, target_lines=1000))
    start = time.perf_counter()
    engine = Pinpoint.from_source(program.source)
    engine.check(UseAfterFreeChecker())
    elapsed = time.perf_counter() - start
    # Typically ~0.5 s; 30 s only trips on a complexity regression.
    assert elapsed < 30, f"1k-line analysis took {elapsed:.1f}s"


def test_term_factory_shares_subterms():
    from repro.smt import terms as T

    before = T.FACTORY.size()
    a = T.bool_var("perf_a")
    parts = [T.or_(a, T.bool_var(f"perf_{i}")) for i in range(100)]
    first = T.and_(*parts)
    second = T.and_(*parts)
    assert first is second
    created = T.FACTORY.size() - before
    # 1 var + 100 vars + 100 ors + 1 and, plus the negations the
    # complement checks materialize (~2 per or).  Order-of-magnitude
    # guard: sharing failure would create thousands.
    assert created < 600


def test_deep_negation_linear():
    # Regression guard for the De Morgan memo: negating a deep nest must
    # not be exponential.
    from repro.smt import terms as T

    term = T.bool_var("z0")
    for i in range(200):
        term = T.or_(T.and_(term, T.bool_var(f"zg{i}")), T.bool_var(f"zh{i}"))
    start = time.perf_counter()
    negated = T.not_(term)
    assert T.not_(negated) is term
    assert time.perf_counter() - start < 5


def test_linear_solver_scales_with_sharing():
    from repro.smt import terms as T
    from repro.smt.linear_solver import LinearSolver

    base = T.and_(*[T.bool_var(f"ls{i}") for i in range(200)])
    solver = LinearSolver()
    start = time.perf_counter()
    for i in range(200):
        solver.is_obviously_unsat(T.and_(base, T.bool_var(f"extra{i}")))
    assert time.perf_counter() - start < 5


def test_disabled_tracing_overhead_is_negligible():
    # trace() with tracing off must stay a constant-time no-op: one
    # attribute load, one truth test, one shared handle.  Guard both the
    # cost and the "no spans collected" invariant.
    from repro.obs.trace import NULL_SPAN, Tracer, set_tracer, trace

    old = set_tracer(Tracer(enabled=False))
    try:
        assert trace("hot.path", unit="f") is NULL_SPAN
        start = time.perf_counter()
        for _ in range(100_000):
            with trace("hot.path"):
                pass
        elapsed = time.perf_counter() - start
    finally:
        set_tracer(old)
    # ~30 ms typical; 5 s only trips if the fast path grows real work.
    assert elapsed < 5, f"100k disabled spans took {elapsed:.2f}s"


def test_disabled_tracing_collects_nothing():
    from repro.obs.trace import Tracer, set_tracer, trace

    old = set_tracer(Tracer(enabled=False))
    try:
        with trace("a", unit="f") as span:
            span.set(ignored=True)
        from repro.obs.trace import get_tracer

        assert get_tracer().spans == []
    finally:
        set_tracer(old)


def test_happens_after_reachability_cached():
    source_lines = ["fn f(a) {"]
    for i in range(50):
        source_lines.append(f"    if (a > {i}) {{ a = a + 1; }}")
    source_lines.append("    p = malloc();")
    source_lines.append("    free(p);")
    source_lines.append("    x = *p;")
    source_lines.append("    return x;")
    source_lines.append("}")
    start = time.perf_counter()
    result = Pinpoint.from_source("\n".join(source_lines)).check(
        UseAfterFreeChecker()
    )
    assert len(result) == 1
    assert time.perf_counter() - start < 20


def test_verify_fast_overhead_under_ten_percent():
    # --verify=fast must stay a cheap structural sweep: its recorded
    # wall time (the verify.seconds counter) is bounded to <10% of the
    # whole analysis on a 1k-line program.  The ratio is measured over
    # three runs and the best is kept: the absolute times are a few
    # hundred milliseconds, so a single garbage-collection pause landing
    # inside the verifier (whose trigger is whatever the rest of the
    # test suite left on the heap) would otherwise dominate the ratio.
    import gc

    from repro import EngineConfig
    from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

    program = generate_program(GeneratorConfig(seed=99, target_lines=1000))
    ratios = []
    verify_ran = False
    for _ in range(3):
        old = get_registry()
        set_registry(MetricsRegistry())
        try:
            gc.collect()
            start = time.perf_counter()
            engine = Pinpoint.from_source(
                program.source, EngineConfig(verify="fast")
            )
            engine.check(UseAfterFreeChecker())
            elapsed = time.perf_counter() - start
            verify_seconds = get_registry().counter("verify.seconds").total()
        finally:
            set_registry(old)
        verify_ran = verify_ran or verify_seconds > 0
        ratios.append(verify_seconds / elapsed)
        if ratios[-1] < 0.10:
            break
    assert verify_ran, "fast mode should have run the verifier"
    assert min(ratios) < 0.10, (
        f"verifier consistently above 10% of analysis time across "
        f"{len(ratios)} runs: " + ", ".join(f"{100 * r:.1f}%" for r in ratios)
    )
