"""Unit tests for AST -> CFG lowering."""

from repro.ir import cfg
from repro.ir.lower import lower_function, lower_program
from repro.lang.parser import parse_function, parse_program


def lower(source: str) -> cfg.Function:
    return lower_function(parse_function(source))


def instrs_of_kind(function: cfg.Function, kind):
    return [i for i in function.all_instrs() if isinstance(i, kind)]


def test_straight_line():
    func = lower("fn f(a) { x = a + 1; return x; }")
    assert func.entry == "entry"
    binops = instrs_of_kind(func, cfg.BinOp)
    assert len(binops) == 1
    assert binops[0].dest == "x"
    rets = instrs_of_kind(func, cfg.Ret)
    assert len(rets) == 1


def test_malloc_becomes_instruction():
    func = lower("fn f() { p = malloc(); return p; }")
    mallocs = instrs_of_kind(func, cfg.Malloc)
    assert len(mallocs) == 1
    assert mallocs[0].dest == "p"


def test_store_and_load():
    func = lower("fn f(p, v) { *p = v; x = *p; return x; }")
    stores = instrs_of_kind(func, cfg.Store)
    loads = instrs_of_kind(func, cfg.Load)
    assert len(stores) == 1 and stores[0].depth == 1
    assert len(loads) == 1 and loads[0].depth == 1


def test_deep_deref_collapses():
    func = lower("fn f(p) { x = **p; return x; }")
    loads = instrs_of_kind(func, cfg.Load)
    assert len(loads) == 1
    assert loads[0].depth == 2


def test_if_creates_diamond():
    func = lower("fn f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }")
    branches = instrs_of_kind(func, cfg.Branch)
    assert len(branches) == 1
    # entry, then, else, join
    assert len(func.blocks) == 4
    branch_block = func.blocks["entry"]
    assert len(branch_block.succs) == 2


def test_if_without_else():
    func = lower("fn f(a) { x = 0; if (a > 0) { x = 1; } return x; }")
    branches = instrs_of_kind(func, cfg.Branch)
    assert len(branches) == 1
    # entry, then, join
    assert len(func.blocks) == 3


def test_while_creates_back_edge():
    func = lower("fn f(n) { i = 0; while (i < n) { i = i + 1; } return i; }")
    labels = set(func.blocks)
    back = [
        (label, succ)
        for label in labels
        for succ in func.blocks[label].succs
        if succ.startswith("loop")
    ]
    assert back, "expected an edge into the loop header"
    header = [label for label in labels if label.startswith("loop")][0]
    assert len(func.blocks[header].preds) == 2  # entry + back edge


def test_nested_expression_flattening():
    func = lower("fn f(a, b) { x = (a + b) * (a - b); return x; }")
    binops = instrs_of_kind(func, cfg.BinOp)
    assert len(binops) == 3  # +, -, *
    temps = {i.dest for i in binops if i.dest.startswith("%t")}
    assert len(temps) == 2


def test_call_lowering():
    func = lower("fn f(p) { r = g(p, 1); h(r); return r; }")
    calls = instrs_of_kind(func, cfg.Call)
    assert len(calls) == 2
    assert calls[0].dest == "r"
    assert calls[1].dest is None


def test_call_arg_flattening():
    func = lower("fn f(p) { g(*p); return 0; }")
    loads = instrs_of_kind(func, cfg.Load)
    calls = instrs_of_kind(func, cfg.Call)
    assert len(loads) == 1
    assert len(calls) == 1
    assert isinstance(calls[0].args[0], cfg.Var)
    assert calls[0].args[0].name == loads[0].dest


def test_single_return_normalization():
    func = lower(
        "fn f(a) { if (a > 0) { return 1; } else { return 2; } }"
    )
    rets = instrs_of_kind(func, cfg.Ret)
    assert len(rets) == 1
    # Both arms assign to the unified return variable.
    assert isinstance(rets[0].value, cfg.Var)


def test_missing_return_gets_zero():
    func = lower("fn f(a) { x = a; }")
    rets = instrs_of_kind(func, cfg.Ret)
    assert len(rets) == 1
    assert isinstance(rets[0].value, cfg.Const)
    assert rets[0].value.value == 0


def test_dead_code_after_return_dropped():
    func = lower("fn f(a) { return a; }")
    assert len(instrs_of_kind(func, cfg.Ret)) == 1


def test_branch_condition_is_var():
    func = lower("fn f(a) { if (a) { x = 1; } return 0; }")
    branch = instrs_of_kind(func, cfg.Branch)[0]
    assert isinstance(branch.cond, cfg.Var)


def test_module_lowering():
    module = lower_program(parse_program("fn a() { } fn b() { a(); }"))
    assert "a" in module and "b" in module
    assert module.instr_count() >= 3


def test_uids_unique():
    func = lower("fn f(a) { x = a; y = x; return y; }")
    uids = [i.uid for i in func.all_instrs()]
    assert len(uids) == len(set(uids))
