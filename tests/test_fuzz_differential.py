"""Differential fuzzing: Pinpoint vs exhaustive concrete execution.

For loop-free, call-free programs over two integer parameters, every
branch condition compares a parameter against a small constant, so a
small input grid exercises every feasible path.  That makes the
interpreter an *exhaustive* oracle:

- soundness: if any probed input triggers a use-after-free at runtime,
  Pinpoint must report at least one finding;
- precision: if Pinpoint reports a finding, some probed input must
  trigger a violation (no loops or calls means no soundiness excuses).

Programs are generated from a small structured grammar (allocations,
frees, copies, dereferences, guarded blocks) with seeded RNG, so every
failure is reproducible by its seed.
"""

import random

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.lang.interp import run_function
from repro.lang.parser import parse_program

GUARD_CONSTANTS = (0, 2)
# Probes straddle every guard constant, so all branch combinations of
# each parameter are reachable within the grid.
PROBES = (-1, 0, 1, 2, 3)


def generate_program(seed: int) -> str:
    """A random loop-free, call-free pointer-manipulating function."""
    rng = random.Random(seed)
    lines = ["fn main(a, b) {"]
    pointers = []  # live pointer variable names
    counter = [0]

    def fresh(prefix):
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def emit_statement(indent):
        pad = "    " * indent
        choice = rng.random()
        if choice < 0.30 or not pointers:
            name = fresh("p")
            lines.append(f"{pad}{name} = malloc();")
            lines.append(f"{pad}*{name} = a;")
            pointers.append(name)
        elif choice < 0.50:
            victim = rng.choice(pointers)
            lines.append(f"{pad}free({victim});")
        elif choice < 0.75:
            victim = rng.choice(pointers)
            name = fresh("x")
            lines.append(f"{pad}{name} = *{victim};")
        else:
            original = rng.choice(pointers)
            name = fresh("q")
            lines.append(f"{pad}{name} = {original};")
            pointers.append(name)

    def emit_block(indent, budget, depth):
        while budget > 0:
            if depth < 2 and rng.random() < 0.25:
                param = rng.choice(("a", "b"))
                constant = rng.choice(GUARD_CONSTANTS)
                op = rng.choice((">", "<=", "=="))
                lines.append(
                    "    " * indent + f"if ({param} {op} {constant}) {{"
                )
                inner = rng.randint(1, min(3, budget))
                emit_block(indent + 1, inner, depth + 1)
                lines.append("    " * indent + "}")
                budget -= inner
            else:
                emit_statement(indent)
                budget -= 1

    emit_block(1, rng.randint(4, 12), 0)
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines)


def dynamic_uaf_exists(source: str) -> bool:
    program = parse_program(source)
    for a in PROBES:
        for b in PROBES:
            interp = run_function(program, "main", a, b, halt_on_violation=False)
            if any(
                v.kind in ("use-after-free", "double-free")
                for v in interp.violations
            ):
                return True
    return False


def pinpoint_reports(source: str) -> int:
    from repro import DoubleFreeChecker

    engine = Pinpoint.from_source(source)
    uaf = engine.check(UseAfterFreeChecker())
    df = engine.check(DoubleFreeChecker())
    return len(uaf) + len(df)


@pytest.mark.parametrize("seed", range(60))
def test_differential(seed):
    source = generate_program(seed)
    dynamic = dynamic_uaf_exists(source)
    static = pinpoint_reports(source)
    if dynamic:
        assert static >= 1, f"UNSOUND on seed {seed}:\n{source}"
    else:
        assert static == 0, f"IMPRECISE on seed {seed}:\n{source}"


# ----------------------------------------------------------------------
# Inter-procedural variant: helpers free/deref/pass-through, still
# loop-free, so the probe grid remains an exhaustive oracle.
# ----------------------------------------------------------------------
HELPERS = """
fn h_free(v) { free(v); return 0; }
fn h_deref(v) { y = *v; return y; }
fn h_id(v) { return v; }
fn h_maybe_free(v, g) { if (g > 0) { free(v); } return 0; }
"""


def generate_interprocedural(seed: int) -> str:
    rng = random.Random(seed + 10_000)
    lines = ["fn main(a, b) {"]
    pointers = []
    counter = [0]

    def fresh(prefix):
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def emit_statement(indent):
        pad = "    " * indent
        choice = rng.random()
        if choice < 0.25 or not pointers:
            name = fresh("p")
            lines.append(f"{pad}{name} = malloc();")
            lines.append(f"{pad}*{name} = a;")
            pointers.append(name)
            return
        victim = rng.choice(pointers)
        if choice < 0.40:
            lines.append(f"{pad}h_free({victim});")
        elif choice < 0.55:
            name = fresh("x")
            lines.append(f"{pad}{name} = h_deref({victim});")
        elif choice < 0.70:
            name = fresh("q")
            lines.append(f"{pad}{name} = h_id({victim});")
            pointers.append(name)
        elif choice < 0.85:
            param = rng.choice(("a", "b"))
            lines.append(f"{pad}h_maybe_free({victim}, {param});")
        else:
            name = fresh("x")
            lines.append(f"{pad}{name} = *{victim};")

    def emit_block(indent, budget, depth):
        while budget > 0:
            if depth < 2 and rng.random() < 0.2:
                param = rng.choice(("a", "b"))
                constant = rng.choice(GUARD_CONSTANTS)
                op = rng.choice((">", "<=", "=="))
                lines.append("    " * indent + f"if ({param} {op} {constant}) {{")
                inner = rng.randint(1, min(3, budget))
                emit_block(indent + 1, inner, depth + 1)
                lines.append("    " * indent + "}")
                budget -= inner
            else:
                emit_statement(indent)
                budget -= 1

    emit_block(1, rng.randint(4, 10), 0)
    lines.append("    return 0;")
    lines.append("}")
    return HELPERS + "\n".join(lines)


@pytest.mark.parametrize("seed", range(60))
def test_differential_interprocedural(seed):
    source = generate_interprocedural(seed)
    dynamic = dynamic_uaf_exists(source)
    static = pinpoint_reports(source)
    if dynamic:
        assert static >= 1, f"UNSOUND on seed {seed}:\n{source}"
    else:
        assert static == 0, f"IMPRECISE on seed {seed}:\n{source}"
