"""Fault injection, quarantine isolation, and CLI error handling."""

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.cli import main
from repro.robust import faults
from repro.robust.diagnostics import (
    REASON_QUARANTINED,
    STAGE_CHECKER,
    STAGE_PARSE,
    STAGE_PREPARE,
    STAGE_SEG,
    STAGE_SMT,
)
from repro.robust.faults import (
    FaultPlan,
    InjectedFault,
    fault_point,
    install_faults,
    reset_faults,
)

TWO_FUNCTIONS = """
fn helper(a) {
    p = malloc();
    free(p);
    x = *p;
    return x;
}

fn main(a) {
    y = helper(a);
    return y;
}
"""


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


# ----------------------------------------------------------------------
# FaultPlan parsing and matching
# ----------------------------------------------------------------------
def test_plan_site_wide_fires_every_time():
    plan = FaultPlan("smt")
    assert plan.should_fire("smt")
    assert plan.should_fire("smt", "anything")
    assert not plan.should_fire("parse")


def test_plan_unit_targeting():
    plan = FaultPlan("prepare:helper")
    assert not plan.should_fire("prepare", "main")
    assert plan.should_fire("prepare", "helper")


def test_plan_counts_are_consumed():
    plan = FaultPlan("smt*2")
    assert plan.should_fire("smt")
    assert plan.should_fire("smt")
    assert not plan.should_fire("smt")


def test_plan_exact_unit_beats_site_wide():
    plan = FaultPlan("seg:main*1,seg")
    assert plan.should_fire("seg", "main")
    # Exact rule exhausted; the site-wide rule still covers main.
    assert plan.should_fire("seg", "main")
    assert plan.should_fire("seg", "other")


def test_plan_rejects_unknown_site():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan("frobnicate")


def test_plan_rejects_bad_count():
    with pytest.raises(ValueError, match="bad fault count"):
        FaultPlan("smt*soon")


def test_fault_point_noop_without_plan():
    fault_point("parse", "anything")  # must not raise


def test_fault_point_fires_with_plan():
    install_faults("parse:broken")
    with pytest.raises(InjectedFault) as excinfo:
        fault_point("parse", "broken")
    assert excinfo.value.site == "parse"
    assert excinfo.value.unit == "broken"


def test_env_var_loads_plan(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "smt*1")
    # Force a fresh lazy load of the environment variable.
    faults._plan = None
    faults._env_loaded = False
    with pytest.raises(InjectedFault):
        fault_point("smt")
    fault_point("smt")  # count consumed: second hit passes


# ----------------------------------------------------------------------
# End-to-end: a fault at each site still yields a CheckResult whose
# diagnostics name the quarantined unit.
# ----------------------------------------------------------------------
def _check_with_fault(spec):
    install_faults(spec)
    engine = Pinpoint.from_source(TWO_FUNCTIONS, recover=True)
    return engine.check(UseAfterFreeChecker())


def test_parse_fault_quarantines_function():
    result = _check_with_fault("parse:helper")
    units = {(d.stage, d.unit) for d in result.diagnostics}
    assert (STAGE_PARSE, "helper") in units
    assert result.degraded


def test_prepare_fault_quarantines_function():
    result = _check_with_fault("prepare:helper")
    units = {(d.stage, d.unit) for d in result.diagnostics}
    assert (STAGE_PREPARE, "helper") in units
    assert any(d.reason == REASON_QUARANTINED for d in result.diagnostics)
    # main still analyzed: helper is treated as an opaque call.
    assert "main" not in {d.unit for d in result.diagnostics if d.stage == STAGE_PREPARE}


def test_seg_fault_quarantines_function():
    result = _check_with_fault("seg:helper")
    units = {(d.stage, d.unit) for d in result.diagnostics}
    assert (STAGE_SEG, "helper") in units


def test_smt_fault_degrades_not_crashes():
    result = _check_with_fault("smt")
    assert any(d.stage == STAGE_SMT for d in result.diagnostics)
    assert result.stats.quarantined_units >= 1
    # The candidate is still reported, just without an SMT verdict.
    assert len(result.reports) >= 1


def test_checker_crash_is_quarantined():
    class ExplodingChecker(UseAfterFreeChecker):
        name = "exploding"

        def sinks(self, prepared, seg):
            raise RuntimeError("checker bug")

    engine = Pinpoint.from_source(TWO_FUNCTIONS)
    result = engine.check(ExplodingChecker())
    assert any(
        d.stage == STAGE_CHECKER and d.reason == REASON_QUARANTINED
        for d in result.diagnostics
    )
    assert result.reports == []


def test_keyboard_interrupt_is_never_swallowed():
    class InterruptingChecker(UseAfterFreeChecker):
        name = "interrupting"

        def sinks(self, prepared, seg):
            raise KeyboardInterrupt()

    engine = Pinpoint.from_source(TWO_FUNCTIONS)
    with pytest.raises(KeyboardInterrupt):
        engine.check(InterruptingChecker())


# ----------------------------------------------------------------------
# CLI surfaces (satellites)
# ----------------------------------------------------------------------
def test_cli_fault_flag_exits_degraded(tmp_path, capsys):
    target = tmp_path / "prog.pin"
    target.write_text(TWO_FUNCTIONS)
    code = main(["check", str(target), "--all", "--fault", "prepare:helper"])
    captured = capsys.readouterr()
    assert code == 3
    assert "helper" in captured.out


def test_cli_parse_error_is_file_line_message(tmp_path, capsys):
    target = tmp_path / "garbage.pin"
    target.write_text("this is not a program at all {{{\n")
    code = main(["check", str(target)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith(f"{target}:")
    assert "Traceback" not in captured.err


def test_cli_run_bad_args_exits_two(tmp_path, capsys):
    target = tmp_path / "prog.pin"
    target.write_text("fn main(a) { return a; }\n")
    code = main(["run", str(target), "--args", "x,y"])
    captured = capsys.readouterr()
    assert code == 2
    assert "integer" in captured.err.lower()


def test_cli_bad_depth_exits_two(tmp_path, capsys):
    target = tmp_path / "prog.pin"
    target.write_text("fn main(a) { return a; }\n")
    code = main(["check", str(target), "--depth", "0"])
    captured = capsys.readouterr()
    assert code == 2
    assert "max_call_depth" in captured.err


def test_cli_strict_mode_fails_on_malformed(tmp_path, capsys):
    target = tmp_path / "broken.pin"
    target.write_text("fn ok() { return 1; }\nfn bad( { return 2; }\n")
    assert main(["check", str(target), "--strict"]) == 2
    capsys.readouterr()
    # Default (recovering) mode degrades instead.
    assert main(["check", str(target)]) == 3
