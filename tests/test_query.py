"""Tests for the ad-hoc value-flow query API."""

import pytest

from repro import Pinpoint
from repro.core.query import ValueFlowQuery

APP = """
fn load_config() {
    raw = read_input();
    return raw;
}

fn run_command(cmd) {
    execute(cmd);
    return 0;
}

fn main(n) {
    cfg = load_config();
    cmd = cfg + n;
    run_command(cmd);

    safe = 42;
    execute(safe);
    return 0;
}
"""


@pytest.fixture(scope="module")
def engine():
    return Pinpoint.from_source(APP)


def test_query_finds_flow(engine):
    flows = (
        ValueFlowQuery("config-to-exec")
        .values_returned_by("read_input")
        .reaching_arguments_of("execute")
        .through_operators()
        .run(engine)
    )
    assert len(flows) == 1
    assert flows[0].sink.function == "run_command"


def test_query_without_operator_traversal_misses_arith_flow(engine):
    flows = (
        ValueFlowQuery()
        .values_returned_by("read_input")
        .reaching_arguments_of("execute")
        .run(engine)
    )
    # cmd = cfg + n breaks pure value identity.
    assert flows == []


def test_query_constant_not_flagged(engine):
    flows = (
        ValueFlowQuery()
        .values_returned_by("read_input")
        .reaching_arguments_of("execute")
        .through_operators()
        .run(engine)
    )
    assert all(r.source.function == "load_config" for r in flows)


def test_query_values_passed_to():
    engine = Pinpoint.from_source(
        """
        fn main() {
            p = malloc();
            retire(p);
            x = *p;
            return x;
        }
        """
    )
    flows = (
        ValueFlowQuery("retired-then-used")
        .values_passed_to("retire")
        .reaching_dereferences()
        .run(engine)
    )
    assert len(flows) == 1


def test_query_null_literals():
    engine = Pinpoint.from_source(
        "fn main() { p = null; x = *p; return x; }"
    )
    flows = (
        ValueFlowQuery().null_literals().reaching_dereferences().run(engine)
    )
    assert len(flows) == 1


def test_query_allocations_to_callee():
    engine = Pinpoint.from_source(
        """
        fn main() {
            p = malloc();
            register_obj(p);
            return 0;
        }
        """
    )
    flows = (
        ValueFlowQuery()
        .allocations()
        .reaching_arguments_of("register_obj")
        .run(engine)
    )
    assert len(flows) == 1


def test_query_requires_sources(engine):
    with pytest.raises(ValueError):
        ValueFlowQuery().reaching_dereferences().run(engine)


def test_query_requires_sinks(engine):
    with pytest.raises(ValueError):
        ValueFlowQuery().allocations().run(engine)


def test_query_is_path_sensitive():
    engine = Pinpoint.from_source(
        """
        fn main(c) {
            v = read_input();
            t = c > 0;
            if (t)  { payload = v; }
            else    { payload = 0; }
            if (!t) { execute(payload); }
            return 0;
        }
        """
    )
    flows = (
        ValueFlowQuery()
        .values_returned_by("read_input")
        .reaching_arguments_of("execute")
        .run(engine)
    )
    assert flows == []  # the tainted value only exists on the other branch
