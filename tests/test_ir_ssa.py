"""Unit tests for SSA construction, dominance, control dependence, gating."""

from repro.ir import cfg
from repro.ir.controldep import control_dependence
from repro.ir.dominance import dominators, post_dominators, VIRTUAL_EXIT
from repro.ir.gating import GateInfo, back_edges
from repro.ir.lower import lower_function
from repro.ir.ssa import base_name, to_ssa
from repro.lang.parser import parse_function
from repro.smt import terms as T


def build(source: str) -> cfg.Function:
    return to_ssa(lower_function(parse_function(source)))


def instrs_of_kind(function: cfg.Function, kind):
    return [i for i in function.all_instrs() if isinstance(i, kind)]


# ----------------------------------------------------------------------
# Dominance
# ----------------------------------------------------------------------
def test_dominators_diamond():
    func = lower_function(
        parse_function("fn f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }")
    )
    dom = dominators(func)
    join = [label for label in func.blocks if label.startswith("join")][0]
    assert dom.idom[join] == "entry"
    assert dom.dominates("entry", join)
    then_block = [label for label in func.blocks if label.startswith("then")][0]
    assert not dom.dominates(then_block, join)
    assert join in dom.frontiers[then_block]


def test_post_dominators_diamond():
    func = lower_function(
        parse_function("fn f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }")
    )
    pdom = post_dominators(func)
    join = [label for label in func.blocks if label.startswith("join")][0]
    assert pdom.idom["entry"] == join
    assert pdom.idom[join] == VIRTUAL_EXIT


# ----------------------------------------------------------------------
# SSA form
# ----------------------------------------------------------------------
def test_ssa_single_assignment():
    func = build("fn f(a) { x = a; x = x + 1; x = x + 2; return x; }")
    defs = {}
    for instr in func.all_instrs():
        dest = instr.defined_var()
        if dest is not None:
            assert dest not in defs, f"{dest} defined twice"
            defs[dest] = instr
    assert any(base_name(d) == "x" for d in defs)


def test_ssa_params_versioned():
    func = build("fn f(a, b) { return a; }")
    assert func.params == ["a.0", "b.0"]


def test_ssa_phi_at_join():
    func = build("fn f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }")
    phis = instrs_of_kind(func, cfg.Phi)
    x_phis = [p for p in phis if base_name(p.dest) == "x"]
    assert len(x_phis) == 1
    operands = {op.name for _, op in x_phis[0].incomings}
    assert len(operands) == 2


def test_ssa_phi_at_loop_header():
    func = build("fn f(n) { i = 0; while (i < n) { i = i + 1; } return i; }")
    phis = instrs_of_kind(func, cfg.Phi)
    i_phis = [p for p in phis if base_name(p.dest) == "i"]
    assert i_phis, "loop variable needs a header phi"


def test_ssa_uses_renamed():
    func = build("fn f(a) { x = a; y = x; return y; }")
    for instr in func.all_instrs():
        for name in instr.used_vars():
            assert "." in name, f"unrenamed use {name}"


def test_ssa_dead_phi_pruned():
    # x is dead after the if; its phi should be pruned.
    func = build("fn f(a) { x = 0; if (a > 0) { x = 1; } return a; }")
    phis = instrs_of_kind(func, cfg.Phi)
    assert all(base_name(p.dest) != "x" for p in phis)


def test_ssa_idempotent():
    func = build("fn f(a) { return a; }")
    again = to_ssa(func)
    assert again is func


def test_base_name():
    assert base_name("x.3") == "x"
    assert base_name("%t1.0") == "%t1"
    assert base_name("plain") == "plain"


# ----------------------------------------------------------------------
# Control dependence
# ----------------------------------------------------------------------
def test_control_dependence_if():
    func = build("fn f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }")
    deps = control_dependence(func)
    then_block = [label for label in func.blocks if label.startswith("then")][0]
    else_block = [label for label in func.blocks if label.startswith("else")][0]
    join = [label for label in func.blocks if label.startswith("join")][0]
    assert ("entry", True) in deps[then_block]
    assert ("entry", False) in deps[else_block]
    assert deps[join] == []  # join always executes


def test_control_dependence_nested():
    func = build(
        """
        fn f(a, b) {
            if (a > 0) {
                if (b > 0) { x = 1; } else { x = 2; }
            }
            return 0;
        }
        """
    )
    deps = control_dependence(func)
    # Control dependence is direct (Ferrante et al.): the inner then-block
    # depends on the inner branch only; the chain to the outer branch is
    # recovered by the recursive CD() expansion (paper Example 3.5).
    inner_branch = [label for label in func.blocks if label.startswith("then")][0]
    inner_then = [label for label in func.blocks if label.startswith("then")][1]
    assert deps[inner_then] == [(inner_branch, True)]
    assert deps[inner_branch] == [("entry", True)]


def test_control_dependence_loop_body():
    func = build("fn f(n) { i = 0; while (i < n) { i = i + 1; } return i; }")
    deps = control_dependence(func)
    body = [label for label in func.blocks if label.startswith("body")][0]
    header = [label for label in func.blocks if label.startswith("loop")][0]
    assert any(block == header and taken for block, taken in deps[body])


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------
def test_gates_for_diamond_phi():
    func = build("fn f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }")
    gates = GateInfo(func)
    phi = instrs_of_kind(func, cfg.Phi)[0]
    conds = gates.gates[phi.uid]
    assert len(conds) == 2
    # One gate is the branch variable, the other its negation.
    assert conds[0] is T.not_(conds[1]) or conds[1] is T.not_(conds[0])


def test_gates_if_without_else():
    func = build("fn f(a) { x = 0; if (a > 0) { x = 1; } return x; }")
    gates = GateInfo(func)
    phi = [p for p in instrs_of_kind(func, cfg.Phi) if base_name(p.dest) == "x"][0]
    conds = gates.gates[phi.uid]
    assert len(conds) == 2
    assert conds[0] is T.not_(conds[1]) or conds[1] is T.not_(conds[0])


def test_gates_loop_header_unconstrained():
    func = build("fn f(n) { i = 0; while (i < n) { i = i + 1; } return i; }")
    gates = GateInfo(func)
    phi = [p for p in instrs_of_kind(func, cfg.Phi) if base_name(p.dest) == "i"][0]
    conds = gates.gates[phi.uid]
    kinds = sorted(c.kind for c in conds)
    # One operand comes from entry (condition true), the back-edge one gets
    # a fresh loop selector variable.
    assert "bvar" in kinds


def test_back_edges_detected():
    func = build("fn f(n) { i = 0; while (i < n) { i = i + 1; } return i; }")
    edges = back_edges(func)
    assert len(edges) == 1
    (src, dst), = edges
    assert dst.startswith("loop")


def test_gates_nested_diamond():
    func = build(
        """
        fn f(a, b) {
            if (a > 0) {
                if (b > 0) { x = 1; } else { x = 2; }
            } else { x = 3; }
            return x;
        }
        """
    )
    gates = GateInfo(func)
    phis = instrs_of_kind(func, cfg.Phi)
    outer = [p for p in phis if len(p.incomings) == 2 and base_name(p.dest) == "x"]
    assert phis
    for phi in phis:
        assert len(gates.gates[phi.uid]) == len(phi.incomings)
