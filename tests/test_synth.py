"""Tests for the synthetic workload generators."""

import pytest

from repro import Pinpoint, UseAfterFreeChecker, DoubleFreeChecker
from repro.lang.parser import parse_program
from repro.synth.generator import (
    GeneratorConfig,
    classify_reports,
    generate_program,
    split_false_positives,
)
from repro.synth.juliet import generate_juliet_suite, suite_source
from repro.synth.projects import (
    PAPER_SUBJECTS,
    subject,
    subjects_ordered_by_size,
    synthesize_subject,
)


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def test_generated_program_parses():
    program = generate_program(GeneratorConfig(seed=3, target_lines=300))
    parsed = parse_program(program.source)
    assert len(parsed.functions) > 5
    assert program.line_count >= 300


def test_generator_deterministic():
    a = generate_program(GeneratorConfig(seed=42, target_lines=200))
    b = generate_program(GeneratorConfig(seed=42, target_lines=200))
    assert a.source == b.source
    assert a.ground_truth == b.ground_truth


def test_generator_seeds_bugs_and_traps():
    program = generate_program(GeneratorConfig(seed=7, target_lines=600))
    assert program.true_bugs()
    assert program.traps()


def test_generated_program_analyzes_with_expected_precision():
    program = generate_program(GeneratorConfig(seed=11, target_lines=400))
    engine = Pinpoint.from_source(program.source)
    result = engine.check(UseAfterFreeChecker())
    tps, fps, missed = classify_reports(result.reports, program.ground_truth)
    # All seeded true bugs found; no trap reported.
    assert not missed, f"missed seeded bugs: {missed}"
    assert not fps, f"false positives: {[str(r) for r in fps]}"


def test_generated_program_large_scale_precision():
    """At larger scale the loop-imprecision seeds kick in: the only false
    positives are the soundiness-expected ones (paper's 14.3% regime)."""
    program = generate_program(GeneratorConfig(seed=11, target_lines=4000))
    engine = Pinpoint.from_source(program.source)
    result = engine.check(UseAfterFreeChecker())
    tps, fps, missed = classify_reports(result.reports, program.ground_truth)
    expected, unexpected = split_false_positives(fps, program.ground_truth)
    assert not missed
    assert not unexpected, [str(r) for r in unexpected]
    # Every seeded loop-FP pattern is (expectedly) reported.
    seeded_loop_fps = [t for t in program.ground_truth if t.is_loop_fp]
    assert len(expected) == len(seeded_loop_fps)
    fp_rate = len(fps) / max(len(result.reports), 1)
    assert fp_rate <= 0.25  # paper: 14.3% for use-after-free


def test_classify_reports_matches_by_function():
    program = generate_program(GeneratorConfig(seed=5, target_lines=400))
    engine = Pinpoint.from_source(program.source)
    result = engine.check(UseAfterFreeChecker())
    tps, fps, missed = classify_reports(result.reports, program.ground_truth)
    assert len(tps) >= len(program.true_bugs()) - len(missed)


# ----------------------------------------------------------------------
# Paper subjects
# ----------------------------------------------------------------------
def test_catalog_has_thirty_subjects():
    assert len(PAPER_SUBJECTS) == 30
    assert subject("mysql").kloc == 2030
    assert subject("firefox").kloc == 7998


def test_subjects_ordered():
    ordered = subjects_ordered_by_size()
    klocs = [s.kloc for s in ordered]
    assert klocs == sorted(klocs)


def test_synthesize_subject_scales():
    small = synthesize_subject(subject("mcf"), lines_per_kloc=2.0)
    large = synthesize_subject(subject("tmux"), lines_per_kloc=2.0)
    assert small.line_count < large.line_count
    parse_program(small.source)
    parse_program(large.source)


def test_synthesize_subject_deterministic():
    a = synthesize_subject(subject("gzip"))
    b = synthesize_subject(subject("gzip"))
    assert a.source == b.source


# ----------------------------------------------------------------------
# Juliet-like suite
# ----------------------------------------------------------------------
def test_juliet_has_51_variants():
    cases = generate_juliet_suite()
    assert len(cases) == 51
    idents = {c.ident for c in cases}
    assert len(idents) == 51


def test_juliet_cases_parse():
    cases = generate_juliet_suite()
    parse_program(suite_source(cases))


def test_juliet_case_structure():
    cases = generate_juliet_suite()
    kinds = {c.bug_kind for c in cases}
    routes = {c.route for c in cases}
    controls = {c.control for c in cases}
    assert kinds == {"uaf", "df"}
    assert len(routes) >= 8
    assert len(controls) == 5


@pytest.mark.parametrize("case_index", [0, 10, 25, 40, 50])
def test_juliet_individual_case_detected(case_index):
    cases = generate_juliet_suite()
    case = cases[case_index]
    engine = Pinpoint.from_source(case.source)
    checker = UseAfterFreeChecker() if case.bug_kind == "uaf" else DoubleFreeChecker()
    result = engine.check(checker)
    bad_hits = [
        r
        for r in result
        if case.bad_function in (r.source.function, r.sink.function)
        or any(case.bad_function == loc.function for loc in r.path)
        or r.source.function.startswith(case.bad_function.rsplit("_", 1)[0])
    ]
    assert bad_hits, f"case {case.ident} ({case.route}/{case.control}) missed"


def test_juliet_full_recall():
    """The paper's recall experiment: every seeded flaw detected."""
    cases = generate_juliet_suite()
    engine = Pinpoint.from_source(suite_source(cases))
    uaf = engine.check(UseAfterFreeChecker())
    df = engine.check(DoubleFreeChecker())
    reports = list(uaf) + list(df)

    def detected(case):
        prefix = case.bad_function.rsplit("_", 1)[0]  # cweNNN_vK
        for report in reports:
            touched = [report.source.function, report.sink.function] + [
                loc.function for loc in report.path
            ]
            if any(name.startswith(prefix) and name.endswith(("_bad", "_make", "_release")) for name in touched):
                return True
        return False

    missed = [c for c in cases if not detected(c)]
    assert not missed, f"missed: {[(c.ident, c.bug_kind, c.route, c.control) for c in missed]}"


def test_juliet_good_twins_clean():
    """No false positives on the good twins."""
    cases = generate_juliet_suite()
    engine = Pinpoint.from_source(suite_source(cases))
    uaf = engine.check(UseAfterFreeChecker())
    df = engine.check(DoubleFreeChecker())
    for report in list(uaf) + list(df):
        assert not report.source.function.endswith("_good")
        assert not report.sink.function.endswith("_good")
