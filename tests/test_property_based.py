"""Property-based tests (hypothesis) for core data structures and
invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import terms as T
from repro.smt.linear_solver import LinearSolver
from repro.smt.simplify import simplify
from repro.smt.solver import Result, SMTSolver


# ----------------------------------------------------------------------
# Term strategies
# ----------------------------------------------------------------------
_names = st.sampled_from(["a", "b", "c", "d", "e"])
_int_names = st.sampled_from(["x", "y", "z"])


@st.composite
def bool_terms(draw, depth=3):
    if depth == 0:
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return T.bool_var(draw(_names))
        if choice == 1:
            return T.TRUE if draw(st.booleans()) else T.FALSE
        lhs = T.int_var(draw(_int_names))
        rhs_choice = draw(st.integers(0, 1))
        rhs = (
            T.const(draw(st.integers(-5, 5)))
            if rhs_choice
            else T.int_var(draw(_int_names))
        )
        op = draw(st.sampled_from([T.eq, T.ne, T.lt, T.le, T.gt, T.ge]))
        return op(lhs, rhs)
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return T.not_(draw(bool_terms(depth=depth - 1)))
    if choice == 1:
        return T.and_(
            draw(bool_terms(depth=depth - 1)), draw(bool_terms(depth=depth - 1))
        )
    if choice == 2:
        return T.or_(
            draw(bool_terms(depth=depth - 1)), draw(bool_terms(depth=depth - 1))
        )
    return draw(bool_terms(depth=0))


# ----------------------------------------------------------------------
# Hash-consing invariants
# ----------------------------------------------------------------------
@given(bool_terms())
@settings(max_examples=200, deadline=None)
def test_terms_hash_consed(term):
    """Rebuilding the same structure yields the identical object."""
    rebuilt = _rebuild(term)
    assert rebuilt is term


def _rebuild(term):
    if not term.args:
        return term
    args = tuple(_rebuild(a) for a in term.args)
    return T.FACTORY._rebuild(term.kind, args)


@given(bool_terms())
@settings(max_examples=200, deadline=None)
def test_double_negation_is_identity(term):
    assert T.not_(T.not_(term)) is term


@given(bool_terms(), bool_terms())
@settings(max_examples=200, deadline=None)
def test_and_or_commutative(a, b):
    assert T.and_(a, b) is T.and_(b, a)
    assert T.or_(a, b) is T.or_(b, a)


@given(bool_terms(), bool_terms(), bool_terms())
@settings(max_examples=100, deadline=None)
def test_and_associative(a, b, c):
    assert T.and_(T.and_(a, b), c) is T.and_(a, T.and_(b, c))


@given(bool_terms(depth=0))
@settings(max_examples=200, deadline=None)
def test_atom_contradiction_always_false(term):
    """Syntactic complement detection is guaranteed at the atom level
    (conjunction flattening can hide deeper pairs — those are caught by
    the solvers, see test_smt_excluded_middle)."""
    assert T.and_(term, T.not_(term)) is T.FALSE
    assert T.or_(term, T.not_(term)) is T.TRUE


# ----------------------------------------------------------------------
# Evaluation-based semantics oracle
# ----------------------------------------------------------------------
def _evaluate(term, bool_env, int_env):
    kind = term.kind
    if term is T.TRUE:
        return True
    if term is T.FALSE:
        return False
    if kind == "bvar":
        return bool_env[term.value]
    if kind == "ivar":
        return int_env[term.value]
    if kind == "const":
        return term.value
    if kind == "not":
        return not _evaluate(term.args[0], bool_env, int_env)
    if kind == "and":
        return all(_evaluate(a, bool_env, int_env) for a in term.args)
    if kind == "or":
        return any(_evaluate(a, bool_env, int_env) for a in term.args)
    lhs = _evaluate(term.args[0], bool_env, int_env)
    rhs = _evaluate(term.args[1], bool_env, int_env) if len(term.args) > 1 else None
    return {
        "eq": lambda: lhs == rhs,
        "ne": lambda: lhs != rhs,
        "lt": lambda: lhs < rhs,
        "le": lambda: lhs <= rhs,
        "gt": lambda: lhs > rhs,
        "ge": lambda: lhs >= rhs,
        "add": lambda: lhs + rhs,
        "sub": lambda: lhs - rhs,
        "mul": lambda: lhs * rhs,
        "neg": lambda: -lhs,
    }[kind]()


_envs = st.fixed_dictionaries(
    {
        "bools": st.fixed_dictionaries(
            {name: st.booleans() for name in ["a", "b", "c", "d", "e"]}
        ),
        "ints": st.fixed_dictionaries(
            {name: st.integers(-5, 5) for name in ["x", "y", "z"]}
        ),
    }
)


@given(bool_terms(), _envs)
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_semantics(term, envs):
    simple = simplify(term)
    original = _evaluate(term, envs["bools"], envs["ints"])
    simplified = _evaluate(simple, envs["bools"], envs["ints"])
    assert original == simplified


@given(bool_terms(), _envs)
@settings(max_examples=150, deadline=None)
def test_smt_sat_respects_witness(term, envs):
    """If a concrete environment satisfies the term, the solver must not
    answer UNSAT (soundness of the UNSAT answer)."""
    if _evaluate(term, envs["bools"], envs["ints"]):
        assert SMTSolver().check(term) is not Result.UNSAT


@given(bool_terms())
@settings(max_examples=75, deadline=None)
def test_smt_excluded_middle(term):
    """term | !term is always satisfiable; term & !term never."""
    solver = SMTSolver()
    assert solver.check(T.or_(term, T.not_(term))) is Result.SAT
    assert solver.check(T.and_(term, T.not_(term))) is Result.UNSAT


@given(bool_terms(), _envs)
@settings(max_examples=150, deadline=None)
def test_linear_solver_never_flags_satisfiable(term, envs):
    """The linear filter must never flag a condition some environment
    satisfies (it only catches genuine contradictions)."""
    if _evaluate(term, envs["bools"], envs["ints"]):
        assert not LinearSolver().is_obviously_unsat(term)


@given(bool_terms())
@settings(max_examples=100, deadline=None)
def test_linear_solver_agrees_with_smt(term):
    """Anything the linear solver flags, the SMT solver refutes too."""
    if LinearSolver().is_obviously_unsat(term):
        assert SMTSolver().check(term) is Result.UNSAT


# ----------------------------------------------------------------------
# Renaming invariants
# ----------------------------------------------------------------------
@given(bool_terms())
@settings(max_examples=150, deadline=None)
def test_rename_roundtrip(term):
    mapping = {name: name + "~1" for name in term.variables()}
    inverse = {v: k for k, v in mapping.items()}
    renamed = T.FACTORY.rename(term, mapping)
    assert T.FACTORY.rename(renamed, inverse) is term


@given(bool_terms())
@settings(max_examples=150, deadline=None)
def test_rename_variables_disjoint(term):
    mapping = {name: name + "~ctx" for name in term.variables()}
    renamed = T.FACTORY.rename(term, mapping)
    if mapping:
        assert not (renamed.variables() & term.variables())
