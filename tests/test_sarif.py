"""Tests for the SARIF export."""

import json

import pytest

from repro import Pinpoint, UseAfterFreeChecker, DoubleFreeChecker
from repro.core.sarif import SARIF_VERSION, to_sarif, to_sarif_json

UAF = """
fn release(p) { free(p); return 0; }
fn main(c) {
    p = malloc();
    t = c > 0;
    if (t) { release(p); }
    if (t) { x = *p; return x; }
    return 0;
}
"""


@pytest.fixture(scope="module")
def results():
    engine = Pinpoint.from_source(UAF)
    return [
        engine.check(UseAfterFreeChecker()),
        engine.check(DoubleFreeChecker()),
    ]


def test_sarif_top_level_structure(results):
    log = to_sarif(results, "uaf.pin")
    assert log["version"] == SARIF_VERSION
    assert "$schema" in log
    assert len(log["runs"]) == 2


def test_sarif_run_tool_metadata(results):
    run = to_sarif(results, "uaf.pin")["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-pinpoint"
    assert driver["rules"][0]["id"] == "use-after-free"


def test_sarif_result_fields(results):
    run = to_sarif(results, "uaf.pin")["runs"][0]
    assert len(run["results"]) == 1
    result = run["results"][0]
    assert result["ruleId"] == "use-after-free"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "uaf.pin"
    assert location["region"]["startLine"] >= 1
    # The source of the flow is a related location.
    related = result["relatedLocations"][0]["logicalLocations"][0]["name"]
    assert related == "release"


def test_sarif_code_flow_present(results):
    result = to_sarif(results, "uaf.pin")["runs"][0]["results"][0]
    flow = result["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(flow) >= 1


def test_sarif_properties_carry_condition_and_witness(results):
    result = to_sarif(results, "uaf.pin")["runs"][0]["results"][0]
    props = result["properties"]
    assert "pathCondition" in props
    assert props["verdict"] == "sat"
    assert "feasibleWhen" in props  # the c > 0 witness


def test_sarif_stats_attached(results):
    run = to_sarif(results, "uaf.pin")["runs"][0]
    assert run["properties"]["stats"]["functions"] == 2


def test_sarif_json_parses(results):
    text = to_sarif_json(results, "uaf.pin")
    parsed = json.loads(text)
    assert parsed["version"] == SARIF_VERSION


def test_sarif_empty_results():
    engine = Pinpoint.from_source("fn main() { return 0; }")
    log = to_sarif([engine.check(UseAfterFreeChecker())])
    assert log["runs"][0]["results"] == []


def test_cli_sarif_flag(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "p.pin"
    path.write_text(UAF)
    code = main(["check", str(path), "--sarif"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == SARIF_VERSION
    assert payload["runs"][0]["results"]
