"""Keep the shipped examples runnable: each must exit cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # deliverable: at least three examples


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate their output"
