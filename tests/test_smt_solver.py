"""Unit tests for the SAT core and the DPLL(T) SMT solver."""

import pytest

from repro.smt import terms as T
from repro.smt.sat import SatSolver, neg_lit, pos_lit
from repro.smt.simplify import simplify
from repro.smt.solver import Result, SMTSolver


# ----------------------------------------------------------------------
# SAT core
# ----------------------------------------------------------------------
def test_sat_trivial():
    s = SatSolver()
    v = s.new_var()
    s.add_clause([pos_lit(v)])
    assert s.solve() is True
    assert s.model()[v] == 1


def test_sat_contradiction():
    s = SatSolver()
    v = s.new_var()
    s.add_clause([pos_lit(v)])
    s.add_clause([neg_lit(v)])
    assert s.solve() is False


def test_sat_chain_propagation():
    s = SatSolver()
    vs = [s.new_var() for _ in range(10)]
    s.add_clause([pos_lit(vs[0])])
    for a, b in zip(vs, vs[1:]):
        s.add_clause([neg_lit(a), pos_lit(b)])  # a -> b
    assert s.solve() is True
    assert all(s.model()[v] == 1 for v in vs)


def test_sat_pigeonhole_3_in_2_unsat():
    # 3 pigeons, 2 holes: classic small UNSAT instance exercising learning.
    s = SatSolver()
    holes = 2
    pigeons = 3
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = s.new_var()
    for p in range(pigeons):
        s.add_clause([pos_lit(var[p, h]) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([neg_lit(var[p1, h]), neg_lit(var[p2, h])])
    assert s.solve() is False


def test_sat_random_satisfiable():
    import random

    rng = random.Random(7)
    s = SatSolver()
    n = 30
    vs = [s.new_var() for _ in range(n)]
    target = [rng.random() < 0.5 for _ in range(n)]
    # Clauses consistent with the target assignment.
    for _ in range(120):
        picks = rng.sample(range(n), 3)
        clause = []
        satisfied_pick = rng.choice(picks)
        for i in picks:
            want_true = target[i] if i == satisfied_pick else rng.random() < 0.5
            clause.append(pos_lit(vs[i]) if want_true else neg_lit(vs[i]))
        s.add_clause(clause)
    assert s.solve() is True


def test_sat_assumptions():
    s = SatSolver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([neg_lit(a), pos_lit(b)])  # a -> b
    assert s.solve(assumptions=[pos_lit(a), neg_lit(b)]) is False
    assert s.solve(assumptions=[pos_lit(a)]) is True


# ----------------------------------------------------------------------
# SMT solver
# ----------------------------------------------------------------------
@pytest.fixture
def smt():
    return SMTSolver()


def test_smt_true_false(smt):
    assert smt.check(T.TRUE) is Result.SAT
    assert smt.check(T.FALSE) is Result.UNSAT


def test_smt_pure_boolean(smt):
    a, b = T.bool_var("a"), T.bool_var("b")
    assert smt.check(T.and_(a, T.or_(T.not_(a), b))) is Result.SAT
    assert smt.check(T.and_(a, T.not_(a))) is Result.UNSAT


def test_smt_equality_chain_conflict(smt):
    x, y, z = T.int_var("x"), T.int_var("y"), T.int_var("z")
    cond = T.and_(T.eq(x, y), T.eq(y, z), T.ne(x, z))
    assert smt.check(cond) is Result.UNSAT


def test_smt_equality_chain_sat(smt):
    x, y, z = T.int_var("x"), T.int_var("y"), T.int_var("z")
    cond = T.and_(T.eq(x, y), T.ne(y, z))
    assert smt.check(cond) is Result.SAT


def test_smt_constants_conflict(smt):
    x = T.int_var("x")
    cond = T.and_(T.eq(x, T.const(1)), T.eq(x, T.const(2)))
    assert smt.check(cond) is Result.UNSAT


def test_smt_order_cycle(smt):
    x, y = T.int_var("x"), T.int_var("y")
    cond = T.and_(T.lt(x, y), T.lt(y, x))
    assert smt.check(cond) is Result.UNSAT


def test_smt_order_with_constants(smt):
    x = T.int_var("x")
    sat_cond = T.and_(T.gt(x, T.const(0)), T.lt(x, T.const(10)))
    unsat_cond = T.and_(T.gt(x, T.const(10)), T.lt(x, T.const(5)))
    assert smt.check(sat_cond) is Result.SAT
    assert smt.check(unsat_cond) is Result.UNSAT


def test_smt_strict_cycle_le(smt):
    x, y = T.int_var("x"), T.int_var("y")
    # x <= y and y <= x is fine; adding x != y makes it unsat only with
    # equality reasoning over orders, which we do not claim; but
    # x < y & y <= x must be unsat.
    cond = T.and_(T.lt(x, y), T.le(y, x))
    assert smt.check(cond) is Result.UNSAT


def test_smt_arithmetic_ground(smt):
    x, y = T.int_var("x"), T.int_var("y")
    cond = T.and_(
        T.eq(x, T.const(2)),
        T.eq(y, T.add(x, T.const(1))),
        T.eq(y, T.const(4)),
    )
    assert smt.check(cond) is Result.UNSAT
    cond_sat = T.and_(
        T.eq(x, T.const(2)),
        T.eq(y, T.add(x, T.const(1))),
        T.eq(y, T.const(3)),
    )
    assert smt.check(cond_sat) is Result.SAT


def test_smt_congruence(smt):
    x, y = T.int_var("x"), T.int_var("y")
    fx = T.add(x, T.const(5))
    fy = T.add(y, T.const(5))
    cond = T.and_(T.eq(x, y), T.ne(fx, fy))
    assert smt.check(cond) is Result.UNSAT


def test_smt_boolean_equation_rewrite(smt):
    # f == (e != 0), f, e == 0 must be unsat (paper Fig. 5's condition ②).
    f = T.bool_var("f")
    e = T.int_var("e")
    cond = T.and_(T.eq(f, T.ne(e, T.const(0))), f, T.eq(e, T.const(0)))
    assert smt.check(cond) is Result.UNSAT


def test_smt_value_flow_path_condition(smt):
    # The paper's motivating condition: theta1 & theta3 & theta2 over
    # independent branch variables is satisfiable.
    t1, t2, t3 = (T.bool_var(f"theta{i}") for i in (1, 2, 3))
    assert smt.check(T.and_(t1, t2, t3)) is Result.SAT


def test_smt_mixed_structure(smt):
    a = T.bool_var("a")
    x = T.int_var("x")
    cond = T.and_(
        T.or_(a, T.eq(x, T.const(1))),
        T.or_(T.not_(a), T.eq(x, T.const(2))),
        T.eq(x, T.const(3)),
    )
    assert smt.check(cond) is Result.UNSAT


def test_smt_stats(smt):
    smt.check(T.bool_var("a"))
    smt.check(T.and_(T.bool_var("a"), T.not_(T.bool_var("a"))))
    assert smt.queries == 2
    assert smt.sat_answers == 1
    assert smt.unsat_answers == 1


def test_is_satisfiable_wrapper(smt):
    assert smt.is_satisfiable(T.bool_var("a"))
    assert not smt.is_satisfiable(T.FALSE)


# ----------------------------------------------------------------------
# Simplifier
# ----------------------------------------------------------------------
def test_simplify_absorption():
    a, b = T.bool_var("a"), T.bool_var("b")
    assert simplify(T.and_(a, T.or_(a, b))) is a
    assert simplify(T.or_(a, T.and_(a, b))) is a


def test_simplify_complement():
    a, b = T.bool_var("a"), T.bool_var("b")
    assert simplify(T.and_(b, a, T.not_(a))) is T.FALSE
    assert simplify(T.or_(b, a, T.not_(a))) is T.TRUE


def test_simplify_preserves_sat(smt):
    a, b, c = T.bool_var("a"), T.bool_var("b"), T.bool_var("c")
    cond = T.and_(T.or_(a, b), T.or_(a, T.not_(b)), c)
    simple = simplify(cond)
    assert smt.check(simple) is smt.check(cond)
