"""Tests for report baselining/suppression."""

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.core.baseline import Baseline, finding_key

V1 = """
fn main() {
    p = malloc();
    free(p);
    x = *p;
    return x;
}
"""

# Same finding, shifted lines (a comment added above), plus a new bug.
V2 = """
// changelog entry
// another line
fn main() {
    p = malloc();
    free(p);
    x = *p;
    return x;
}
fn fresh() {
    q = malloc();
    free(q);
    y = *q;
    return y;
}
"""


def run(source):
    return Pinpoint.from_source(source).check(UseAfterFreeChecker())


def test_baseline_from_results_roundtrip():
    result = run(V1)
    baseline = Baseline.from_results([result])
    assert len(baseline) == 1
    text = baseline.to_json()
    reloaded = Baseline.from_json(text)
    assert reloaded.findings == baseline.findings


def test_baseline_suppresses_known_findings():
    baseline = Baseline.from_results([run(V1)])
    second = run(V1)
    assert baseline.filter_new(second) == []


def test_line_shifts_do_not_resurface():
    baseline = Baseline.from_results([run(V1)])
    second = run(V2)
    new = baseline.filter_new(second)
    assert len(new) == 1
    assert new[0].source.function == "fresh"


def test_fixed_findings_detected():
    baseline = Baseline.from_results([run(V2)])
    second = run(V1)  # `fresh` removed
    fixed = baseline.filter_fixed(second)
    assert len(fixed) == 1
    assert fixed[0][1] == "fresh"


def test_contains_and_merge():
    first = Baseline.from_results([run(V1)])
    second = Baseline.from_results([run(V2)])
    merged = first.merge(second)
    assert len(merged) == len(second)
    report = run(V1).reports[0]
    assert report in merged


def test_save_and_load(tmp_path):
    baseline = Baseline.from_results([run(V1)])
    path = tmp_path / "baseline.json"
    baseline.save(str(path))
    loaded = Baseline.load(str(path))
    assert loaded.findings == baseline.findings


def test_finding_key_ignores_lines():
    reports = run(V1).reports
    shifted = run(V2).reports
    matching = [r for r in shifted if r.source.function == "main"]
    assert finding_key(reports[0]) == finding_key(matching[0])
    assert reports[0].source.line != matching[0].source.line


def test_empty_baseline_passes_everything():
    baseline = Baseline()
    result = run(V2)
    assert len(baseline.filter_new(result)) == len(result.reports)
