"""Tests for the resource-leak checker."""

from repro import Pinpoint, ResourceLeakChecker


def check(source: str):
    return Pinpoint.from_source(source).check(ResourceLeakChecker())


def test_unclosed_file_reported():
    result = check(
        """
        fn main(name) {
            f = fopen(name);
            return 0;
        }
        """
    )
    assert len(result) == 1


def test_closed_file_clean():
    result = check(
        """
        fn main(name) {
            f = fopen(name);
            fclose(f);
            return 0;
        }
        """
    )
    assert len(result) == 0


def test_returned_handle_escapes():
    result = check(
        """
        fn open_it(name) {
            f = fopen(name);
            return f;
        }
        """
    )
    assert len(result) == 0


def test_handle_closed_by_callee():
    result = check(
        """
        fn closer(f) { fclose(f); return 0; }
        fn main(name) {
            f = fopen(name);
            closer(f);
            return 0;
        }
        """
    )
    assert len(result) == 0


def test_handle_passed_to_unknown_callee_escapes():
    result = check(
        """
        fn main(name) {
            f = fopen(name);
            register_handle(f);
            return 0;
        }
        """
    )
    assert len(result) == 0


def test_socket_leak_reported():
    result = check(
        """
        fn main() {
            s = socket();
            t = socket();
            close(s);
            return 0;
        }
        """
    )
    assert len(result) == 1  # only t leaks


def test_handle_stored_into_param_escapes():
    result = check(
        """
        fn stash(slot, name) {
            f = fopen(name);
            *slot = f;
            return 0;
        }
        """
    )
    assert len(result) == 0
