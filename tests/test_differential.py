"""Differential study: all four analyses on the same ground-truth suites.

Confirms the characteristic profile of each analysis design the paper
contrasts:

- Pinpoint: full recall, no false positives on the good twins;
- layered SVF: recall preserved (over-approximation) but noisy;
- dense IFDS: recall on the dangling-value cases, path-insensitive noise;
- intra-unit: misses every cross-function case.
"""

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.baselines.ifds import IFDSBaseline
from repro.baselines.intraunit import IntraUnitBaseline
from repro.baselines.svf import SVFBaseline
from repro.synth.juliet import generate_juliet_suite, suite_source

CROSS_ROUTES = {"callee-free", "return-freed", "identity"}


@pytest.fixture(scope="module")
def uaf_cases():
    return [c for c in generate_juliet_suite() if c.bug_kind == "uaf"]


@pytest.fixture(scope="module")
def source(uaf_cases):
    return suite_source(uaf_cases)


def detected_cases(cases, reports):
    hits = set()
    for case in cases:
        prefix = case.bad_function.rsplit("_", 1)[0]
        for report in reports:
            touched = [report.source.function, report.sink.function] + [
                loc.function for loc in getattr(report, "path", ())
            ]
            if any(name.startswith(prefix) for name in touched):
                hits.add(case.ident)
                break
    return hits


def test_pinpoint_profile(uaf_cases, source):
    reports = list(Pinpoint.from_source(source).check(UseAfterFreeChecker()))
    hits = detected_cases(uaf_cases, reports)
    assert len(hits) == len(uaf_cases)  # full recall
    assert not any(
        r.source.function.endswith("_good") or r.sink.function.endswith("_good")
        for r in reports
    )


def test_svf_profile(uaf_cases, source):
    reports = SVFBaseline.from_source(source).check(UseAfterFreeChecker())
    hits = detected_cases(uaf_cases, reports)
    # Over-approximation preserves recall...
    assert len(hits) == len(uaf_cases)
    # ...at the cost of noise: more reports than Pinpoint produces.
    pinpoint = list(Pinpoint.from_source(source).check(UseAfterFreeChecker()))
    assert len(reports) > len(pinpoint)


def test_ifds_profile(uaf_cases, source):
    reports = IFDSBaseline.from_source(source).check_use_after_free()
    hits = detected_cases(uaf_cases, reports)
    # The dense analysis finds the overwhelming majority (its coarse heap
    # model may merge a couple of cases into one report site).
    assert len(hits) >= int(len(uaf_cases) * 0.8)


def test_intraunit_profile(uaf_cases, source):
    engine = Pinpoint.from_source(source)
    reports = IntraUnitBaseline(engine).check(UseAfterFreeChecker())
    hits = detected_cases(uaf_cases, reports)
    cross = {c.ident for c in uaf_cases if c.route in CROSS_ROUTES}
    local = {c.ident for c in uaf_cases} - cross
    # Finds the local cases...
    assert local <= hits | cross  # every miss is a cross-function case
    # ...and misses at least the callee-free/return-freed shapes.
    missed = {c.ident for c in uaf_cases} - hits
    assert missed
    assert missed <= cross
