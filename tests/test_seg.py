"""Unit tests for SEG construction and DD/CD/PC condition queries."""

from repro.core.pipeline import prepare_source
from repro.ir import cfg
from repro.ir.ssa import base_name
from repro.seg.builder import build_seg
from repro.seg.conditions import ConditionBuilder
from repro.seg.graph import def_key, use_key, vertex_var
from repro.smt import terms as T
from repro.smt.solver import Result, SMTSolver


def prepare_one(source: str, name: str):
    prepared = prepare_source(source)
    func = prepared[name]
    seg = build_seg(func)
    return func, seg, ConditionBuilder(seg, func.function)


def find_instr(func, kind, predicate=lambda i: True):
    for instr in func.function.all_instrs():
        if isinstance(instr, kind) and predicate(instr):
            return instr
    raise AssertionError(f"no {kind.__name__} found")


def ssa_var(func, base):
    for instr in func.function.all_instrs():
        dest = instr.defined_var()
        if dest is not None and base_name(dest) == base:
            return dest
    raise AssertionError(f"no def of {base}")


# ----------------------------------------------------------------------
# Graph structure
# ----------------------------------------------------------------------
def test_assign_edge():
    func, seg, _ = prepare_one("fn f(a) { x = a; return x; }", "f")
    x = ssa_var(func, "x")
    edges = seg.in_edges[def_key(x)]
    assert len(edges) == 1
    assert vertex_var(edges[0].src) == func.function.params[0]
    assert edges[0].label is T.TRUE
    assert edges[0].is_copy


def test_phi_edges_carry_gates():
    func, seg, _ = prepare_one(
        "fn f(a, b, c) { if (c > 0) { x = a; } else { x = b; } return x; }", "f"
    )
    phi = find_instr(func, cfg.Phi, lambda i: base_name(i.dest) == "x")
    edges = seg.in_edges[def_key(phi.dest)]
    assert len(edges) == 2
    labels = [e.label for e in edges]
    assert labels[0] is T.not_(labels[1]) or labels[1] is T.not_(labels[0])


def test_operator_vertices_not_copies():
    func, seg, _ = prepare_one("fn f(a, b) { x = a + b; return x; }", "f")
    x = ssa_var(func, "x")
    edges = seg.in_edges[def_key(x)]
    assert len(edges) == 1
    assert edges[0].src[0] == "op"
    assert not edges[0].is_copy


def test_load_edges_from_memory():
    func, seg, _ = prepare_one(
        "fn f(a) { p = malloc(); *p = a; x = *p; return x; }", "f"
    )
    x = ssa_var(func, "x")
    edges = [e for e in seg.in_edges[def_key(x)] if e.is_copy]
    assert len(edges) == 1
    assert base_name(vertex_var(edges[0].src)) == "a"


def test_free_creates_use_anchor():
    func, seg, _ = prepare_one("fn f() { p = malloc(); free(p); return 0; }", "f")
    call = find_instr(func, cfg.Call, lambda i: i.callee == "free")
    p = call.args[0].name
    assert use_key(p, call.uid) in seg.vertices


def test_deref_creates_use_anchor():
    func, seg, _ = prepare_one("fn f(p) { x = *p; return x; }", "f")
    load = find_instr(func, cfg.Load, lambda i: not i.dest.startswith("R$"))
    assert use_key(load.pointer.name, load.uid) in seg.vertices


def test_control_dependence_recorded():
    func, seg, _ = prepare_one(
        "fn f(a) { if (a > 0) { x = free_it(); } return 0; }", "f"
    )
    call = find_instr(func, cfg.Call, lambda i: i.callee == "free_it")
    controls = seg.statement_controls(call.uid)
    assert len(controls) == 1
    assert controls[0][1] is True


# ----------------------------------------------------------------------
# DD / CD
# ----------------------------------------------------------------------
def test_dd_of_comparison(smt=None):
    func, seg, cond = prepare_one("fn f(e) { t = e != 0; return t; }", "f")
    t = ssa_var(func, "t")
    constraint = cond.dd(t)
    # DD(t) constrains t <-> (e != 0) and defers e to the caller.
    assert func.function.params[0] in constraint.params
    solver = SMTSolver()
    e = func.function.params[0]
    # t & (e == 0) & DD(t) must be unsatisfiable.
    check = T.and_(constraint.term, T.bool_var(t), T.eq(T.int_var(e), T.const(0)))
    assert solver.check(check) is Result.UNSAT


def test_dd_param_deferred():
    func, seg, cond = prepare_one("fn f(a) { x = a; return x; }", "f")
    x = ssa_var(func, "x")
    constraint = cond.dd(x)
    assert constraint.params == frozenset({func.function.params[0]})
    assert constraint.receivers == frozenset()


def test_dd_receiver_deferred():
    func, seg, cond = prepare_one("fn f() { r = g(); return r; }", "f")
    r = ssa_var(func, "r")
    constraint = cond.dd(r)
    assert r in constraint.receivers


def test_dd_phi_implications():
    func, seg, cond = prepare_one(
        "fn f(a, b, c) { if (c > 0) { x = a; } else { x = b; } return x; }", "f"
    )
    phi = find_instr(func, cfg.Phi, lambda i: base_name(i.dest) == "x")
    x = phi.dest
    constraint = cond.dd(x)
    solver = SMTSolver()
    a, b, c = func.function.params
    # Under c > 0, x must equal a: x != a & c > 0 & DD is unsat.
    check = T.and_(
        constraint.term,
        T.gt(T.int_var(c), T.const(0)),
        T.ne(T.int_var(x), T.int_var(a)),
    )
    assert solver.check(check) is Result.UNSAT
    # Without fixing the branch, x may equal b.
    check_sat = T.and_(constraint.term, T.eq(T.int_var(x), T.int_var(b)))
    assert solver.check(check_sat) is not Result.UNSAT


def test_cd_single_branch():
    func, seg, cond = prepare_one(
        "fn f(a) { if (a > 0) { sink(a); } return 0; }", "f"
    )
    call = find_instr(func, cfg.Call, lambda i: i.callee == "sink")
    constraint = cond.cd(call.uid)
    # CD includes the branch literal and the defining comparison.
    solver = SMTSolver()
    a = func.function.params[0]
    check = T.and_(constraint.term, T.le(T.int_var(a), T.const(0)))
    assert solver.check(check) is Result.UNSAT


def test_cd_nested_chains():
    func, seg, cond = prepare_one(
        """
        fn f(a, b) {
            if (a > 0) {
                if (b > 0) { sink(a); }
            }
            return 0;
        }
        """,
        "f",
    )
    call = find_instr(func, cfg.Call, lambda i: i.callee == "sink")
    constraint = cond.cd(call.uid)
    solver = SMTSolver()
    a, b = func.function.params
    # Both branch conditions must hold for the sink to execute.
    for param in (a, b):
        check = T.and_(constraint.term, T.le(T.int_var(param), T.const(0)))
        assert solver.check(check) is Result.UNSAT


def test_cd_efficient_no_spurious_conditions():
    # Example 3.6: a statement after the diamond has TRUE control
    # dependence — not the verbose disjunction over all paths.
    func, seg, cond = prepare_one(
        "fn f(a) { if (a > 0) { x = 1; } else { x = 2; } sink(x); return 0; }",
        "f",
    )
    call = find_instr(func, cfg.Call, lambda i: i.callee == "sink")
    constraint = cond.cd(call.uid)
    assert constraint.term is T.TRUE


# ----------------------------------------------------------------------
# PC (Equation 1)
# ----------------------------------------------------------------------
def test_pc_feasible_path():
    func, seg, cond = prepare_one(
        """
        fn f(a, c) {
            p = malloc();
            *p = a;
            x = *p;
            if (c > 0) { sink(x); }
            return 0;
        }
        """,
        "f",
    )
    x = ssa_var(func, "x")
    call = find_instr(func, cfg.Call, lambda i: i.callee == "sink")
    a_def = def_key(func.function.params[0])
    path = [a_def, def_key(x), use_key(x, call.uid)]
    constraint = cond.pc(path)
    solver = SMTSolver()
    assert solver.check(constraint.term) is not Result.UNSAT


def test_pc_infeasible_contradictory_branches():
    # The classic false-positive trap: the two statements sit on
    # contradictory branches of the same condition.
    func, seg, cond = prepare_one(
        """
        fn f(a, c) {
            t = c > 0;
            if (t) { x = a; } else { x = 0; }
            if (!t) { sink(x); }
            return 0;
        }
        """,
        "f",
    )
    x_phi = find_instr(func, cfg.Phi, lambda i: base_name(i.dest) == "x")
    call = find_instr(func, cfg.Call, lambda i: i.callee == "sink")
    a_param = func.function.params[0]
    path = [def_key(a_param), def_key(x_phi.dest), use_key(x_phi.dest, call.uid)]
    constraint = cond.pc(path)
    solver = SMTSolver()
    # Taking the a->x edge requires t; reaching the sink requires !t.
    edge_label = [
        e.label for e in seg.in_edges[def_key(x_phi.dest)] if e.is_copy
    ][0]
    full = T.and_(constraint.term, edge_label)
    assert solver.check(full) is Result.UNSAT
