"""Tests for the run-history store and perf-regression detection."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.history import (
    SCHEMA_VERSION,
    HistoryStore,
    TrendThresholds,
    collect_run_record,
    compute_trend,
    findings_digest,
    fingerprint_paths,
    fingerprint_text,
    resolve_history_dir,
    write_bench_file,
)
from repro.obs.metrics import MetricsRegistry
from repro.robust.faults import reset_faults

UAF = """
fn main() {
    p = malloc();
    free(p);
    x = *p;
    return x;
}
"""


@pytest.fixture
def uaf_file(tmp_path):
    path = tmp_path / "uaf.pin"
    path.write_text(UAF)
    return str(path)


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    reset_faults()


def record(fingerprint="fp", command="check", wall=1.0, peak=10.0, findings=1):
    return {
        "schema": SCHEMA_VERSION,
        "ts": 0.0,
        "command": command,
        "label": "x",
        "fingerprint": fingerprint,
        "wall_seconds": wall,
        "peak_mb": peak,
        "exit_code": 0,
        "findings": {"total": findings, "digest": "d"},
        "robust": {"degradations": 0},
    }


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_paths_order_independent(tmp_path):
    a = tmp_path / "a.pin"
    b = tmp_path / "b.pin"
    a.write_text("fn main() { return 0; }")
    b.write_text("fn helper() { return 1; }")
    assert fingerprint_paths([str(a), str(b)]) == fingerprint_paths([str(b), str(a)])


def test_fingerprint_paths_tracks_content_not_path(tmp_path):
    a = tmp_path / "a.pin"
    a.write_text("v1")
    first = fingerprint_paths([str(a)])
    a.write_text("v2")
    assert fingerprint_paths([str(a)]) != first


def test_fingerprint_paths_tolerates_missing_file(tmp_path):
    fp = fingerprint_paths([str(tmp_path / "nope.pin")])
    assert len(fp) == 16


def test_findings_digest_order_independent():
    keys = [("uaf", "main", 3), ("leak", "main", 1)]
    assert findings_digest(keys) == findings_digest(list(reversed(keys)))
    assert findings_digest(keys) != findings_digest(keys[:1])


# ----------------------------------------------------------------------
# Record collection
# ----------------------------------------------------------------------
def test_collect_run_record_pulls_registry_figures():
    registry = MetricsRegistry()
    seconds = registry.counter("engine.seconds", "t")
    seconds.inc(0.25, phase="seg")
    seconds.inc(0.5, phase="checker", checker="uaf")
    seconds.inc(0.25, phase="checker", checker="leak")
    registry.counter("cache.hits", "h").inc(3)
    registry.counter("cache.misses", "m").inc(2)
    hist = registry.histogram("smt.solve_seconds", "s", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    rec = collect_run_record(
        registry,
        command="check",
        label="prog.pin",
        fingerprint="abc",
        wall_seconds=1.234567891,
        peak_mb=12.5,
        exit_code=1,
        findings=2,
        findings_by_checker={"uaf": 2},
        digest="dig",
        clock=lambda: 1700000000.0,
    )
    assert rec["schema"] == SCHEMA_VERSION
    assert rec["stages"] == {"seg": 0.25, "checker": 0.75}
    assert rec["cache"] == {"hits": 3, "misses": 2, "writes": 0}
    assert rec["findings"] == {"total": 2, "by_checker": {"uaf": 2}, "digest": "dig"}
    assert "p50" in rec["quantiles"]["smt.solve_seconds"]
    assert rec["ts_iso"].endswith("Z")
    # non-default profile payload stays out of the record unless given
    assert "profile" not in rec


def test_collect_run_record_empty_registry():
    rec = collect_run_record(
        MetricsRegistry(), command="check", label="", fingerprint="f"
    )
    assert rec["stages"] == {}
    assert rec["quantiles"] == {}
    assert rec["sched"] == {
        "jobs": 0,
        "waves": 0,
        "tasks": 0,
        "resumed": False,
        "resume_wave": 0,
        "journal_skips": 0,
        "retries": 0,
        "critical_path_seconds": 0.0,
        "overhead_ratio": 0.0,
        "utilization": 0.0,
        "dispatch": {
            "serialize_seconds": 0.0,
            "serialize_bytes": 0,
            "deserialize_seconds": 0.0,
            "result_bytes": 0,
            "queue_seconds": 0.0,
            "warmup_seconds": 0.0,
        },
    }


# ----------------------------------------------------------------------
# HistoryStore
# ----------------------------------------------------------------------
def test_store_append_assigns_sequential_ids(tmp_path):
    store = HistoryStore(str(tmp_path / "hist"))
    assert store.append(record()) == "r00001"
    assert store.append(record()) == "r00002"
    records = store.records()
    assert [r["run_id"] for r in records] == ["r00001", "r00002"]
    assert [e["run_id"] for e in store.index()] == ["r00001", "r00002"]
    assert store.latest()["run_id"] == "r00002"
    assert store.get("r00001")["run_id"] == "r00001"
    assert store.get("r99999") is None


def test_store_empty_dir(tmp_path):
    store = HistoryStore(str(tmp_path / "hist"))
    assert store.records() == []
    assert store.index() == []
    assert store.latest() is None


def test_store_tolerates_torn_tail(tmp_path):
    store = HistoryStore(str(tmp_path))
    store.append(record())
    store.append(record())
    with open(store.runs_path, "a", encoding="utf-8") as handle:
        handle.write('{"schema": 1, "torn...')
    assert len(store.records()) == 2


def test_store_skips_newer_schema_records(tmp_path):
    store = HistoryStore(str(tmp_path))
    store.append(record())
    future = record()
    future["schema"] = SCHEMA_VERSION + 1
    with open(store.runs_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(future) + "\n")
    assert len(store.records()) == 1


def test_store_index_rejects_newer_schema(tmp_path):
    store = HistoryStore(str(tmp_path))
    store.append(record())
    with open(store.index_path, "w", encoding="utf-8") as handle:
        json.dump({"schema": SCHEMA_VERSION + 1, "runs": [{}] * 9}, handle)
    assert store.index() == []


def test_store_reindex_rebuilds_lost_index(tmp_path):
    store = HistoryStore(str(tmp_path))
    store.append(record())
    store.append(record())
    os.unlink(store.index_path)
    assert store.index() == []
    assert store.reindex() == 2
    assert [e["run_id"] for e in store.index()] == ["r00001", "r00002"]


def test_resolve_history_dir_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_HISTORY_DIR", raising=False)
    assert resolve_history_dir() is None
    assert resolve_history_dir("/x") == "/x"
    monkeypatch.setenv("REPRO_HISTORY_DIR", "/env")
    assert resolve_history_dir() == "/env"
    assert resolve_history_dir("/flag") == "/flag"


# ----------------------------------------------------------------------
# Trend / regression detection
# ----------------------------------------------------------------------
def test_trend_no_runs_is_ok():
    report = compute_trend([])
    assert report.ok and "no runs" in report.reason


def test_trend_insufficient_history_is_ok():
    report = compute_trend([record()], TrendThresholds(min_runs=1))
    assert report.ok and "insufficient history" in report.reason
    assert report.baseline_count == 0


def test_trend_within_thresholds():
    runs = [record(wall=1.0), record(wall=1.1), record(wall=1.05)]
    report = compute_trend(runs)
    assert report.ok
    assert report.baseline == {"wall_seconds": 1.05, "peak_mb": 10.0, "findings": 1}
    assert report.baseline_count == 2


def test_trend_wall_regression_needs_ratio_and_floor():
    thresholds = TrendThresholds(wall_ratio=1.5, wall_floor_seconds=0.5)
    # 3x slower but below the absolute floor: not a regression.
    tiny = [record(wall=0.1), record(wall=0.1), record(wall=0.3)]
    assert compute_trend(tiny, thresholds).ok
    # 3x slower and well past the floor: regression.
    big = [record(wall=1.0), record(wall=1.0), record(wall=3.0)]
    report = compute_trend(big, thresholds)
    assert not report.ok
    (reg,) = report.regressions
    assert reg["metric"] == "wall_seconds"
    assert reg["ratio"] == 3.0


def test_trend_memory_regression():
    thresholds = TrendThresholds(mem_ratio=1.5, mem_floor_mb=5.0)
    runs = [record(peak=10.0), record(peak=10.0), record(peak=40.0)]
    report = compute_trend(runs, thresholds)
    assert not report.ok
    assert report.regressions[0]["metric"] == "peak_mb"


def test_trend_findings_drift_regresses_both_directions():
    for latest in (0, 2):
        runs = [record(findings=1), record(findings=1), record(findings=latest)]
        report = compute_trend(runs)
        assert not report.ok
        assert any(r["metric"] == "findings" for r in report.regressions)


def test_trend_filters_by_fingerprint_and_command():
    runs = [
        record(fingerprint="other", wall=0.01),  # different source: excluded
        record(command="bench", wall=0.01),  # different command: excluded
        record(wall=1.0),
        record(wall=1.0),
        record(wall=1.0),
    ]
    report = compute_trend(runs)
    assert report.ok
    assert report.baseline_count == 2
    assert report.baseline["wall_seconds"] == 1.0


def test_trend_baseline_uses_last_n_runs():
    runs = [record(wall=100.0)] + [record(wall=1.0)] * 5 + [record(wall=1.0)]
    report = compute_trend(runs, TrendThresholds(baseline_runs=5))
    assert report.ok  # the 100 s outlier aged out of the window
    assert report.baseline["wall_seconds"] == 1.0


def test_trend_median_shrugs_off_one_noisy_run():
    runs = [record(wall=1.0), record(wall=50.0), record(wall=1.0), record(wall=1.1)]
    report = compute_trend(runs)
    assert report.ok


def test_trend_report_as_dict_round_trips():
    runs = [record(wall=1.0), record(wall=1.0), record(wall=9.0)]
    data = compute_trend(runs).as_dict()
    assert json.loads(json.dumps(data)) == data
    assert data["ok"] is False
    assert data["regressions"][0]["metric"] == "wall_seconds"


def test_write_bench_file(tmp_path):
    store = HistoryStore(str(tmp_path))
    store.append(record(wall=1.0))
    store.append(record(wall=1.2))
    target = tmp_path / "BENCH_pinpoint.json"
    document = write_bench_file(str(target), store.records(), compute_trend(store.records()))
    on_disk = json.loads(target.read_text())
    assert on_disk == document
    assert on_disk["benchmark"] == "pinpoint"
    assert [p["run_id"] for p in on_disk["runs"]] == ["r00001", "r00002"]
    assert on_disk["trend"]["ok"] is True


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def test_check_records_history(uaf_file, tmp_path, capsys):
    hist = str(tmp_path / "hist")
    assert main(["check", uaf_file, "--history-dir", hist]) == 1
    assert main(["check", uaf_file, "--history-dir", hist]) == 1
    out = capsys.readouterr().out
    assert "[history] recorded r00001" in out
    assert "[history] recorded r00002" in out
    records = HistoryStore(hist).records()
    assert len(records) == 2
    first, second = records
    assert first["command"] == "check"
    assert first["fingerprint"] == second["fingerprint"]
    assert first["findings"]["total"] == 1
    assert first["findings"]["digest"] == second["findings"]["digest"]
    assert first["wall_seconds"] > 0
    assert "seg" in first["stages"]


def test_check_history_via_env(uaf_file, tmp_path, monkeypatch):
    hist = str(tmp_path / "hist")
    monkeypatch.setenv("REPRO_HISTORY_DIR", hist)
    main(["check", uaf_file])
    assert len(HistoryStore(hist).records()) == 1


def test_check_without_history_dir_records_nothing(uaf_file, tmp_path, monkeypatch, capsys):
    monkeypatch.delenv("REPRO_HISTORY_DIR", raising=False)
    main(["check", uaf_file])
    assert "[history]" not in capsys.readouterr().out


def test_history_list_and_show(uaf_file, tmp_path, capsys):
    hist = str(tmp_path / "hist")
    main(["check", uaf_file, "--history-dir", hist])
    capsys.readouterr()
    assert main(["history", "list", "--history-dir", hist]) == 0
    out = capsys.readouterr().out
    assert "r00001" in out and "check" in out

    assert main(["history", "show", "--history-dir", hist]) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["run_id"] == "r00001"
    assert shown["schema"] == SCHEMA_VERSION

    assert main(["history", "show", "r00001", "--history-dir", hist]) == 0
    assert json.loads(capsys.readouterr().out)["run_id"] == "r00001"

    assert main(["history", "show", "r00099", "--history-dir", hist]) == 2


def test_history_list_json(uaf_file, tmp_path, capsys):
    hist = str(tmp_path / "hist")
    main(["check", uaf_file, "--history-dir", hist])
    capsys.readouterr()
    main(["history", "list", "--history-dir", hist, "--json"])
    entries = json.loads(capsys.readouterr().out)
    assert entries[0]["run_id"] == "r00001"


def test_history_requires_dir(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_HISTORY_DIR", raising=False)
    assert main(["history", "list"]) == 2
    assert "--history-dir" in capsys.readouterr().err


def test_history_diff(uaf_file, tmp_path, capsys):
    hist = str(tmp_path / "hist")
    main(["check", uaf_file, "--history-dir", hist])
    main(["check", uaf_file, "--history-dir", hist])
    capsys.readouterr()
    assert main(["history", "diff", "--history-dir", hist]) == 0
    out = capsys.readouterr().out
    assert "r00001" in out and "r00002" in out
    assert "wall_seconds" in out

    main(["history", "diff", "r00001", "r00002", "--history-dir", hist, "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["same_fingerprint"] is True
    assert payload["same_findings_digest"] is True


def test_history_diff_surfaces_dispatch_overhead_split(uaf_file, tmp_path, capsys):
    """Acceptance: the compute-vs-dispatch split of a --jobs 2 run lands
    in run history and ``history diff`` surfaces its deltas."""
    hist = str(tmp_path / "hist")
    main(["check", uaf_file, "--jobs", "2", "--history-dir", hist])
    main(["check", uaf_file, "--jobs", "2", "--history-dir", hist])
    capsys.readouterr()

    records = HistoryStore(hist).records()
    for rec in records:
        sched = rec["sched"]
        assert sched["jobs"] == 2
        assert sched["critical_path_seconds"] > 0
        assert 0.0 <= sched["overhead_ratio"] <= 1.0
        assert 0.0 <= sched["utilization"] <= 1.0
        dispatch = sched["dispatch"]
        assert dispatch["serialize_bytes"] > 0
        assert dispatch["serialize_seconds"] >= 0

    assert main(["history", "diff", "--history-dir", hist]) == 0
    out = capsys.readouterr().out
    assert "critical_path" in out
    assert "overhead_ratio" in out
    assert "utilization" in out

    main(["history", "diff", "--history-dir", hist, "--json"])
    payload = json.loads(capsys.readouterr().out)
    attr = payload["attr"]
    assert len(attr["critical_path_seconds"]) == 2
    assert all(v > 0 for v in attr["critical_path_seconds"])
    assert all(0.0 <= v <= 1.0 for v in attr["overhead_ratio"])


def sched_record(wall=1.0, jobs=2, overhead=0.2, **kwargs):
    rec = record(wall=wall, **kwargs)
    rec["sched"] = {
        "jobs": jobs,
        "overhead_ratio": overhead,
        "critical_path_seconds": wall * (1 - overhead),
        "utilization": 0.5,
    }
    return rec


def test_trend_overhead_ratio_gate_needs_ratio_and_floor():
    thresholds = TrendThresholds(overhead_ratio=1.5, overhead_floor=0.10)
    # 3x the baseline share but under the absolute floor: noise.
    small = [sched_record(overhead=0.02), sched_record(overhead=0.02),
             sched_record(overhead=0.06)]
    assert compute_trend(small, thresholds).ok
    # 3x and well past the floor: regression.
    big = [sched_record(overhead=0.15), sched_record(overhead=0.15),
           sched_record(overhead=0.45)]
    report = compute_trend(big, thresholds)
    assert not report.ok
    (reg,) = report.regressions
    assert reg["metric"] == "overhead_ratio"
    assert reg["ratio"] == 3.0
    assert report.baseline["overhead_ratio"] == 0.15


def test_trend_overhead_ratio_ignores_serial_runs():
    thresholds = TrendThresholds(overhead_ratio=1.5, overhead_floor=0.10)
    # Serial runs (jobs <= 1) have no dispatch overhead to gate, however
    # large the recorded ratio looks.
    runs = [sched_record(jobs=1, overhead=0.1),
            sched_record(jobs=1, overhead=0.1),
            sched_record(jobs=1, overhead=0.9)]
    assert compute_trend(runs, thresholds).ok
    # A parallel latest run with only serial priors has no baseline.
    mixed = [sched_record(jobs=1, overhead=0.1),
             sched_record(jobs=1, overhead=0.1),
             sched_record(jobs=2, overhead=0.9)]
    assert compute_trend(mixed, thresholds).ok


def test_history_trend_check_passes_and_writes_bench(uaf_file, tmp_path, capsys):
    hist = str(tmp_path / "hist")
    bench = str(tmp_path / "BENCH_pinpoint.json")
    main(["check", uaf_file, "--history-dir", hist])
    main(["check", uaf_file, "--history-dir", hist])
    capsys.readouterr()
    code = main(
        ["history", "trend", "--history-dir", hist, "--check", "--bench-out", bench]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "trend: OK" in out
    trajectory = json.loads(open(bench).read())
    assert len(trajectory["runs"]) == 2
    assert trajectory["trend"]["ok"] is True


def test_injected_slowdown_fails_trend_with_exit_5(uaf_file, tmp_path, capsys):
    """The acceptance-criteria flow: a deterministic slow fault inflates
    the latest run's wall time past the rolling baseline, and ``history
    trend --check`` exits with the documented regression code (5)."""
    hist = str(tmp_path / "hist")
    bench = str(tmp_path / "BENCH_pinpoint.json")
    main(["check", uaf_file, "--history-dir", hist])
    main(["check", uaf_file, "--history-dir", hist])
    main(["check", uaf_file, "--history-dir", hist, "--fault", "slow:0.4"])
    capsys.readouterr()
    code = main(
        ["history", "trend", "--history-dir", hist, "--check", "--bench-out", bench]
    )
    out = capsys.readouterr().out
    assert code == 5
    assert "REGRESSION" in out
    assert "wall_seconds" in out
    assert json.loads(open(bench).read())["trend"]["ok"] is False
    # Without --check the same regression only reports, exit stays 0.
    assert (
        main(["history", "trend", "--history-dir", hist, "--bench-out", bench]) == 0
    )


def test_history_trend_json(uaf_file, tmp_path, capsys):
    hist = str(tmp_path / "hist")
    main(["check", uaf_file, "--history-dir", hist])
    capsys.readouterr()
    main(
        [
            "history",
            "trend",
            "--history-dir",
            hist,
            "--json",
            "--bench-out",
            str(tmp_path / "b.json"),
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert "insufficient history" in payload["reason"]


def test_selfcheck_records_history(tmp_path, capsys):
    hist = str(tmp_path / "hist")
    main(["selfcheck", "--seeds", "3", "--history-dir", hist])
    (rec,) = HistoryStore(hist).records()
    assert rec["command"] == "selfcheck"
    assert rec["wall_seconds"] > 0


def test_profile_records_history_with_profile_payload(uaf_file, tmp_path, capsys):
    hist = str(tmp_path / "hist")
    main(["profile", uaf_file, "--history-dir", hist])
    (rec,) = HistoryStore(hist).records()
    assert rec["command"] == "profile"
    assert "passes" in rec["profile"]


def test_bench_harness_records_history(tmp_path, monkeypatch, capsys):
    """benchmarks/conftest.py appends a command='bench' record per result."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_conftest",
        os.path.join(os.path.dirname(__file__), "..", "benchmarks", "conftest.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    hist = str(tmp_path / "hist")
    monkeypatch.setenv("REPRO_HISTORY_DIR", hist)
    module._record_bench_history("table1", "col | val", 0.5)
    (rec,) = HistoryStore(hist).records()
    assert rec["command"] == "bench"
    assert rec["label"] == "table1"
    assert rec["wall_seconds"] == 0.5
