"""Unit tests for the concrete interpreter (the dynamic oracle)."""

import pytest

from repro.lang.interp import (
    Interpreter,
    InterpError,
    MemoryError_,
    StepLimitExceeded,
    run_function,
)
from repro.lang.parser import parse_program


def test_arithmetic():
    interp = run_function("fn f(a, b) { return a * b + 1; }", "f", 6, 7)
    assert not interp.violations


def test_return_value():
    program = parse_program("fn f(a) { return a + 1; }")
    interp = Interpreter(program)
    assert interp.call("f", 41) == 42


def test_branching():
    program = parse_program(
        "fn f(a) { if (a > 0) { return 1; } else { return 2; } }"
    )
    interp = Interpreter(program)
    assert interp.call("f", 5) == 1
    assert interp.call("f", -5) == 2


def test_while_loop():
    program = parse_program(
        "fn f(n) { i = 0; s = 0; while (i < n) { s = s + i; i = i + 1; } return s; }"
    )
    interp = Interpreter(program)
    assert interp.call("f", 5) == 10


def test_nested_calls():
    program = parse_program(
        """
        fn double(x) { return x + x; }
        fn f(a) { return double(double(a)); }
        """
    )
    assert Interpreter(program).call("f", 3) == 12


def test_heap_roundtrip():
    program = parse_program(
        "fn f(a) { p = malloc(); *p = a; x = *p; return x; }"
    )
    assert Interpreter(program).call("f", 99) == 99


def test_double_indirection():
    program = parse_program(
        """
        fn f(a) {
            outer = malloc();
            inner = malloc();
            *outer = inner;
            *inner = a;
            x = **outer;
            return x;
        }
        """
    )
    assert Interpreter(program).call("f", 7) == 7


def test_store_through_double_indirection():
    program = parse_program(
        """
        fn f(a) {
            outer = malloc();
            inner = malloc();
            *outer = inner;
            **outer = a;
            x = *inner;
            return x;
        }
        """
    )
    assert Interpreter(program).call("f", 13) == 13


def test_use_after_free_detected():
    interp = run_function(
        "fn f() { p = malloc(); free(p); x = *p; return x; }", "f"
    )
    assert len(interp.violations) == 1
    assert interp.violations[0].kind == "use-after-free"


def test_double_free_detected():
    interp = run_function(
        "fn f() { p = malloc(); free(p); free(p); return 0; }", "f"
    )
    assert interp.violations
    assert interp.violations[0].kind == "double-free"


def test_null_deref_detected():
    interp = run_function("fn f() { p = null; x = *p; return x; }", "f")
    assert interp.violations
    assert interp.violations[0].kind == "null-deref"


def test_free_null_is_noop():
    interp = run_function("fn f() { p = null; free(p); return 0; }", "f")
    assert not interp.violations


def test_clean_run_no_violations():
    interp = run_function(
        "fn f(a) { p = malloc(); *p = a; x = *p; free(p); return x; }", "f", 3
    )
    assert not interp.violations


def test_uaf_across_functions():
    interp = run_function(
        """
        fn release(p) { free(p); return 0; }
        fn f() { p = malloc(); release(p); x = *p; return x; }
        """,
        "f",
    )
    assert interp.violations
    assert interp.violations[0].kind == "use-after-free"


def test_pointer_equality():
    program = parse_program(
        """
        fn f() {
            p = malloc();
            q = p;
            if (p == q) { return 1; }
            return 0;
        }
        """
    )
    assert Interpreter(program).call("f") == 1


def test_distinct_pointers_unequal():
    program = parse_program(
        """
        fn f() {
            p = malloc();
            q = malloc();
            if (p == q) { return 1; }
            return 0;
        }
        """
    )
    assert Interpreter(program).call("f") == 0


def test_pointer_never_equals_null():
    program = parse_program(
        "fn f() { p = malloc(); if (p == null) { return 1; } return 0; }"
    )
    assert Interpreter(program).call("f") == 0


def test_taint_propagates_to_sink():
    interp = run_function(
        """
        fn f() {
            data = fgetc();
            path = data + 10;
            g = fopen(path);
            return g;
        }
        """,
        "f",
    )
    assert interp.taint_sink_hits
    assert interp.taint_sink_hits[0].detail == "fopen"


def test_untainted_sink_clean():
    interp = run_function("fn f() { g = fopen(42); return g; }", "f")
    assert not interp.taint_sink_hits


def test_step_limit():
    program = parse_program("fn f() { i = 0; while (i < 10) { i = i; } return i; }")
    interp = Interpreter(program, step_limit=1000)
    with pytest.raises(StepLimitExceeded):
        interp.call("f")


def test_unknown_function_raises():
    interp = Interpreter(parse_program("fn f() { return 0; }"))
    with pytest.raises(InterpError):
        interp.call("nope")


def test_external_hook():
    program = parse_program("fn f() { v = magic(); return v + 1; }")
    interp = Interpreter(program, external={"magic": lambda: 41})
    assert interp.call("f") == 42


def test_missing_arguments_default_zero():
    program = parse_program("fn f(a, b) { return a + b; }")
    assert Interpreter(program).call("f", 5) == 5


def test_continue_after_violation():
    interp = run_function(
        """
        fn f() {
            p = malloc();
            free(p);
            x = *p;
            q = malloc();
            free(q);
            free(q);
            return 0;
        }
        """,
        "f",
        halt_on_violation=False,
    )
    kinds = [v.kind for v in interp.violations]
    assert "use-after-free" in kinds
    assert "double-free" in kinds
