"""Robustness: odd-but-legal inputs, and fuzzing the parser."""

import random

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.lang.parser import ParseError, parse_program


def check_uaf(source: str):
    return Pinpoint.from_source(source).check(UseAfterFreeChecker())


# ----------------------------------------------------------------------
# Odd-but-legal programs
# ----------------------------------------------------------------------
def test_empty_function_body():
    assert len(check_uaf("fn f() { }")) == 0


def test_self_assignment():
    assert len(check_uaf("fn f(a) { a = a; return a; }")) == 0


def test_unused_parameters():
    assert len(check_uaf("fn f(a, b, c, d, e) { return 0; }")) == 0


def test_shadowing_reassignment_chains():
    result = check_uaf(
        """
        fn f() {
            p = malloc();
            p = malloc();
            p = malloc();
            free(p);
            x = *p;
            return x;
        }
        """
    )
    # Only the LAST allocation is freed and dereferenced.
    assert len(result) == 1


def test_free_of_fresh_malloc_result_expression():
    # free(malloc()) — pointless but legal.
    assert len(check_uaf("fn f() { free(malloc()); return 0; }")) == 0


def test_deeply_nested_branches():
    inner = "x = *p;"
    for i in range(12):
        inner = f"if (a > {i}) {{ {inner} }}"
    source = f"fn f(a) {{ p = malloc(); free(p); {inner} return 0; }}"
    result = check_uaf(source)
    assert len(result) == 1


def test_long_straightline_function():
    lines = ["fn f(a) {", "    acc = a;"]
    for i in range(300):
        lines.append(f"    acc = acc + {i};")
    lines.append("    return acc;")
    lines.append("}")
    assert len(check_uaf("\n".join(lines))) == 0


def test_many_small_functions():
    parts = [f"fn f{i}(a) {{ return a + {i}; }}" for i in range(150)]
    parts.append("fn main() { r = f0(1); return r; }")
    assert len(check_uaf("\n".join(parts))) == 0


def test_wide_call_fanout():
    parts = ["fn sink_it(p) { x = *p; return x; }"]
    body = ["fn main() {", "    p = malloc();", "    free(p);"]
    for i in range(30):
        body.append("    sink_it(p);")
    body.append("    return 0;")
    body.append("}")
    result = check_uaf("\n".join(parts + body))
    assert len(result) >= 1


def test_chained_else_if_ladder():
    ladder = "if (a == 0) { x = 0; }"
    for i in range(1, 10):
        ladder += f" else if (a == {i}) {{ x = {i}; }}"
    source = f"fn f(a) {{ {ladder} return 0; }}"
    assert len(check_uaf(source)) == 0


def test_while_inside_while():
    source = """
    fn f(n, m) {
        i = 0;
        total = 0;
        while (i < n) {
            j = 0;
            while (j < m) {
                total = total + 1;
                j = j + 1;
            }
            i = i + 1;
        }
        return total;
    }
    """
    assert len(check_uaf(source)) == 0


# ----------------------------------------------------------------------
# Parser fuzzing: random garbage must raise ParseError, never crash
# ----------------------------------------------------------------------
TOKENS = [
    "fn", "if", "else", "while", "return", "free", "malloc",
    "{", "}", "(", ")", ";", ",", "=", "*", "+", "-", "!",
    "x", "y", "p", "42", "==", "<", "&&",
]


@pytest.mark.parametrize("seed", range(30))
def test_parser_fuzz_no_crash(seed):
    rng = random.Random(seed)
    soup = " ".join(rng.choice(TOKENS) for _ in range(rng.randint(5, 80)))
    try:
        parse_program(soup)
    except ParseError:
        pass  # expected for garbage
    # Any other exception is a parser bug and fails the test.


@pytest.mark.parametrize("seed", range(10))
def test_mutated_valid_program_no_crash(seed):
    base = "fn f(a) { p = malloc(); *p = a; x = *p; free(p); return x; }"
    rng = random.Random(seed)
    chars = list(base)
    for _ in range(3):
        pos = rng.randrange(len(chars))
        chars[pos] = rng.choice("abc;(){}=*! ")
    mutated = "".join(chars)
    try:
        program = parse_program(mutated)
    except ParseError:
        return
    # If it still parses, the whole pipeline must hold up.
    try:
        Pinpoint.from_program(program).check(UseAfterFreeChecker())
    except Exception as error:  # pragma: no cover - failure reporting
        pytest.fail(f"pipeline crashed on mutated input: {error}\n{mutated}")
