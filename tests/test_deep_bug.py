"""Tests for the deep-bug builder (paper section 5.2's 36-function UAF)."""

import pytest

from repro import EngineConfig, Pinpoint, UseAfterFreeChecker
from repro.lang.interp import run_function
from repro.lang.parser import parse_program
from repro.synth.deepbug import build_deep_bug


def test_builder_shapes():
    bug = build_deep_bug(depth=36)
    program = parse_program(bug.source)
    assert len(program.functions) == 35  # 34 chain functions + driver
    assert len(bug.functions_on_path) == 35
    assert bug.free_function.startswith("down")
    assert bug.deref_function.startswith("use")


def test_deep_bug_detected_at_paper_depth():
    """The 36-function use-after-free the paper highlights in MySQL."""
    bug = build_deep_bug(depth=36)
    engine = Pinpoint.from_source(bug.source)
    result = engine.check(UseAfterFreeChecker())
    assert len(result) >= 1
    report = result.reports[0]
    assert report.source.function == bug.free_function
    assert report.sink.function == bug.deref_function


def test_deep_bug_detected_smaller_depths():
    for depth in (4, 8, 16):
        bug = build_deep_bug(depth=depth)
        result = Pinpoint.from_source(bug.source).check(UseAfterFreeChecker())
        assert len(result) >= 1, f"missed at depth {depth}"


def test_deep_bug_dynamically_real():
    bug = build_deep_bug(depth=20)
    # flag must pass every guard (if flag > level); 100 clears them all.
    interp = run_function(bug.source, "driver", 100, halt_on_violation=False)
    kinds = {v.kind for v in interp.violations}
    assert "use-after-free" in kinds


def test_deep_bug_guard_blocks_dynamic_trigger():
    bug = build_deep_bug(depth=20, guard_every=5)
    # flag = 0 fails the first guard: the free never runs, no violation.
    interp = run_function(bug.source, "driver", 0, halt_on_violation=False)
    kinds = {v.kind for v in interp.violations}
    assert "use-after-free" not in kinds


def test_deep_bug_report_condition_mentions_guards():
    bug = build_deep_bug(depth=16, guard_every=5)
    result = Pinpoint.from_source(bug.source).check(UseAfterFreeChecker())
    assert len(result) >= 1
    report = result.reports[0]
    # The assembled condition for a 16-function chain is long; the report
    # either shows it (mentioning the guard flags) or elides it with the
    # truncation marker.  Either way the verdict is a genuine SAT.
    assert "flag" in report.condition or report.condition == "..."
    assert report.verdict == "sat"


def test_builder_rejects_tiny_depth():
    with pytest.raises(ValueError):
        build_deep_bug(depth=3)
