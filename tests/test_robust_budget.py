"""Resource budgets and the degradation ladder (repro.robust.budget)."""

import time

import pytest

from repro import EngineConfig, Pinpoint, UseAfterFreeChecker
from repro.robust.budget import ResourceBudget
from repro.robust.diagnostics import (
    REASON_BUDGET,
    REASON_DEADLINE,
    REASON_REDUCED_PRECISION,
    STAGE_PTA,
    STAGE_SEARCH,
    STAGE_SMT,
)
from repro.smt import terms as T
from repro.smt.solver import Result, SMTSolver

UAF = """
fn main(a) {
    p = malloc();
    if (a > 0) {
        free(p);
    }
    x = *p;
    return x;
}
"""


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# ResourceBudget unit behaviour
# ----------------------------------------------------------------------
def test_unlimited_budget_never_exhausts():
    budget = ResourceBudget()
    assert not budget.limited
    for _ in range(10000):
        assert budget.spend_steps(1)
    assert not budget.exhausted()
    assert budget.smt_deadline() is None


def test_step_budget_exhausts():
    budget = ResourceBudget(max_steps=3)
    assert budget.spend_steps(1)
    assert budget.spend_steps(2)
    assert not budget.spend_steps(1)
    assert budget.out_of_steps()
    assert budget.exhausted()


def test_wall_clock_deadline_with_fake_clock():
    clock = FakeClock()
    budget = ResourceBudget(wall_seconds=5.0, clock=clock)
    budget.start()
    assert not budget.out_of_time()
    assert budget.remaining_seconds() == pytest.approx(5.0)
    clock.now = 6.0
    assert budget.out_of_time()
    assert budget.remaining_seconds() == 0.0
    assert budget.exhausted()


def test_smt_deadline_is_min_of_query_and_wall():
    clock = FakeClock()
    budget = ResourceBudget(wall_seconds=10.0, smt_seconds=2.0, clock=clock)
    budget.start()
    assert budget.smt_deadline() == pytest.approx(2.0)
    clock.now = 9.0
    # Only 1s of wall budget left: tighter than the 2s per-query cap.
    assert budget.smt_deadline() == pytest.approx(10.0)


def test_budget_rejects_nonsense():
    with pytest.raises(ValueError):
        ResourceBudget(wall_seconds=0)
    with pytest.raises(ValueError):
        ResourceBudget(max_steps=0)
    with pytest.raises(ValueError):
        ResourceBudget(smt_seconds=-1)


# ----------------------------------------------------------------------
# EngineConfig validation (satellite)
# ----------------------------------------------------------------------
def test_engine_config_rejects_bad_depth():
    with pytest.raises(ValueError, match="max_call_depth"):
        EngineConfig(max_call_depth=0)


def test_engine_config_rejects_bad_path_budget():
    with pytest.raises(ValueError, match="max_paths_per_source"):
        EngineConfig(max_paths_per_source=0)
    with pytest.raises(ValueError, match="max_reports_per_function"):
        EngineConfig(max_reports_per_function=-1)


def test_engine_config_defaults_still_valid():
    config = EngineConfig()
    assert config.max_call_depth == 6


# ----------------------------------------------------------------------
# SMT UNKNOWN paths (satellite)
# ----------------------------------------------------------------------
def _contradictory_disjunction():
    """A term whose default-phase boolean model is theory-inconsistent:
    the solver needs a second theory round to find the consistent one."""
    x = T.int_var("x")
    y = T.int_var("y")
    return T.or_(T.and_(T.lt(x, y), T.lt(y, x)), T.lt(x, T.const(5)))


def test_theory_round_cap_yields_unknown_not_hang():
    solver = SMTSolver(max_theory_rounds=1)
    answer = solver.check(_contradictory_disjunction())
    assert answer is Result.UNKNOWN
    assert solver.last_unknown_reason == "rounds"
    # Soundy: UNKNOWN must stay reportable.
    assert solver.is_satisfiable(_contradictory_disjunction())


def test_theory_round_cap_released_finds_sat():
    solver = SMTSolver(max_theory_rounds=50)
    assert solver.check(_contradictory_disjunction()) is Result.SAT


def test_smt_deadline_already_expired_gives_unknown():
    solver = SMTSolver()
    answer = solver.check(
        _contradictory_disjunction(), deadline=time.monotonic() - 1.0
    )
    assert answer is Result.UNKNOWN
    assert solver.last_unknown_reason == "deadline"
    assert solver.deadline_hits == 1


def test_smt_default_deadline_seconds():
    solver = SMTSolver(deadline_seconds=60.0)
    # A generous default deadline must not disturb easy queries.
    assert solver.check(T.lt(T.int_var("x"), T.const(1))) is Result.SAT


def test_engine_smt_deadline_degrades_to_linear_verdict():
    clock_burner = ResourceBudget(smt_seconds=1e-9)
    engine = Pinpoint.from_source(UAF, budget=clock_burner)
    result = engine.check(UseAfterFreeChecker())
    # The candidate survives with an UNKNOWN verdict (linear fallback
    # could not refute it) and the deadline is a structured diagnostic,
    # not a hang or a crash.
    assert len(result.reports) == 1
    assert result.reports[0].verdict == "unknown"
    assert any(
        d.stage == STAGE_SMT and d.reason == REASON_DEADLINE
        for d in result.diagnostics
    )
    assert result.stats.smt_deadline_hits >= 1
    assert result.degraded


# ----------------------------------------------------------------------
# Degradation ladder: search + points-to budgets
# ----------------------------------------------------------------------
def test_search_budget_degrades_to_path_insensitive_reporting():
    budget = ResourceBudget(max_steps=1)
    engine = Pinpoint.from_source(UAF, budget=budget)
    result = engine.check(UseAfterFreeChecker())
    assert len(result.reports) == 1
    assert result.reports[0].verdict == "unknown"
    assert result.stats.degraded_candidates >= 1
    stages = {d.stage for d in result.diagnostics}
    assert STAGE_SEARCH in stages
    reasons = {d.reason for d in result.diagnostics}
    assert REASON_BUDGET in reasons or REASON_REDUCED_PRECISION in reasons


def test_pta_budget_records_degradation():
    budget = ResourceBudget(max_steps=1)
    from repro.core.pipeline import prepare_source

    module = prepare_source(UAF, budget=budget)
    assert any(d.stage == STAGE_PTA for d in module.diagnostics)
    # The prepared module is still usable end to end.
    result = Pinpoint(module, budget=budget).check(UseAfterFreeChecker())
    assert len(result.reports) == 1


def test_unlimited_budget_keeps_full_precision():
    engine = Pinpoint.from_source(UAF)
    result = engine.check(UseAfterFreeChecker())
    assert len(result.reports) == 1
    assert result.reports[0].verdict == "sat"
    assert not result.degraded
    assert result.stats.degraded_candidates == 0


def test_tight_wall_budget_completes_on_generated_program():
    """Acceptance shape: a tight wall-clock budget on a generated
    program must complete promptly and say what was degraded."""
    from repro.synth.generator import GeneratorConfig, generate_program

    program = generate_program(GeneratorConfig(seed=11, target_lines=2000))
    deadline = 0.2
    # The step budget guarantees degradation even on machines fast
    # enough to finish 2000 lines inside the wall-clock deadline.
    budget = ResourceBudget(wall_seconds=deadline, max_steps=500)
    start = time.monotonic()
    engine = Pinpoint.from_source(program.source, budget=budget)
    result = engine.check(UseAfterFreeChecker())
    elapsed = time.monotonic() - start
    # Completion, not precision, is the contract: well within 2x the
    # budget plus fixed slack for the non-budgeted phases (parse, SEG).
    assert elapsed < 2 * deadline + 20.0
    assert isinstance(result.reports, list)
    # The run must disclose its reduced precision.
    assert result.degraded
    assert any(
        d.reason in (REASON_BUDGET, REASON_REDUCED_PRECISION)
        for d in result.diagnostics
    )
