"""Tests for the standard-library models (memcpy/memset/memmove, §4.2)
and SMT witness extraction."""

from repro import Pinpoint, UseAfterFreeChecker
from repro.smt import terms as T
from repro.smt.solver import Result, SMTSolver


def check_uaf(source: str):
    return Pinpoint.from_source(source).check(UseAfterFreeChecker())


# ----------------------------------------------------------------------
# memcpy / memmove
# ----------------------------------------------------------------------
def test_memcpy_propagates_freed_pointer():
    result = check_uaf(
        """
        fn main() {
            src = malloc();
            dst = malloc();
            p = malloc();
            *src = p;
            free(p);
            memcpy(dst, src);
            q = *dst;
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 1


def test_memmove_same_model():
    result = check_uaf(
        """
        fn main() {
            src = malloc();
            dst = malloc();
            p = malloc();
            *src = p;
            free(p);
            memmove(dst, src);
            q = *dst;
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 1


def test_memcpy_without_freed_value_clean():
    result = check_uaf(
        """
        fn main(a) {
            src = malloc();
            dst = malloc();
            *src = a;
            memcpy(dst, src);
            x = *dst;
            return x;
        }
        """
    )
    assert len(result) == 0


def test_memcpy_records_modref_through_params():
    from repro.core.pipeline import prepare_source

    prepared = prepare_source(
        """
        fn copy_into(dst, src) {
            memcpy(dst, src);
            return 0;
        }
        """
    )
    modref = prepared["copy_into"].modref
    assert ("dst", 1) in modref.mod
    assert ("src", 1) in modref.ref


def test_memcpy_through_helper_function():
    # The freed value flows caller -> helper (via memcpy connectors) ->
    # caller.
    result = check_uaf(
        """
        fn copy_into(dst, src) {
            memcpy(dst, src);
            return 0;
        }
        fn main() {
            src = malloc();
            dst = malloc();
            p = malloc();
            *src = p;
            free(p);
            copy_into(dst, src);
            q = *dst;
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 1


# ----------------------------------------------------------------------
# memset
# ----------------------------------------------------------------------
def test_memset_clears_dangling_content():
    # memset strongly updates the single unconditional target: the freed
    # pointer is wiped before the load.
    result = check_uaf(
        """
        fn main() {
            slot = malloc();
            p = malloc();
            *slot = p;
            free(p);
            memset(slot, 0);
            q = *slot;
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 0


def test_memset_records_mod():
    from repro.core.pipeline import prepare_source

    prepared = prepare_source("fn wipe(buf) { memset(buf, 0); return 0; }")
    assert ("buf", 1) in prepared["wipe"].modref.mod


def test_bzero_alias():
    from repro.core.pipeline import prepare_source

    prepared = prepare_source("fn wipe(buf) { bzero(buf); return 0; }")
    assert ("buf", 1) in prepared["wipe"].modref.mod


# ----------------------------------------------------------------------
# SMT model / witnesses
# ----------------------------------------------------------------------
def test_smt_model_available_after_sat():
    solver = SMTSolver()
    c = T.int_var("c")
    cond = T.and_(T.gt(c, T.const(0)), T.lt(c, T.const(10)))
    assert solver.check(cond) is Result.SAT
    assert solver.last_model is not None
    assert any(atom.is_comparison() for atom in solver.last_model)


def test_smt_model_cleared_on_unsat():
    solver = SMTSolver()
    c = T.int_var("c")
    solver.check(T.gt(c, T.const(0)))
    assert solver.last_model is not None
    solver.check(T.and_(T.gt(c, T.const(0)), T.le(c, T.const(0))))
    assert solver.last_model is None


def test_report_carries_witness():
    result = check_uaf(
        """
        fn main(c) {
            p = malloc();
            t = c > 0;
            if (t) { free(p); }
            if (t) { x = *p; return x; }
            return 0;
        }
        """
    )
    assert len(result) == 1
    witness = result.reports[0].witness
    assert "c.0" in witness
    assert str(result.reports[0]).count("feasible when") == 1


def test_unconditional_report_has_no_misleading_witness():
    result = check_uaf(
        "fn main() { p = malloc(); free(p); x = *p; return x; }"
    )
    assert len(result) == 1
    # No interesting source-level atoms: witness may be empty, and the
    # rendering must not emit an empty "feasible when:" line.
    report = result.reports[0]
    if not report.witness:
        assert "feasible when" not in str(report)
