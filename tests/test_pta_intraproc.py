"""Unit tests for the quasi path-sensitive local points-to analysis."""

from repro.ir import cfg
from repro.ir.lower import lower_function
from repro.ir.ssa import base_name, to_ssa
from repro.lang.parser import parse_function
from repro.pta.intraproc import PointsToAnalysis
from repro.pta.memory import AllocObject, AuxObject
from repro.smt import terms as T


def analyze(source: str):
    func = to_ssa(lower_function(parse_function(source)))
    analysis = PointsToAnalysis(func)
    return func, analysis.run()


def find_load(func, dest_base):
    for instr in func.all_instrs():
        if isinstance(instr, cfg.Load) and base_name(instr.dest) == dest_base:
            return instr
    raise AssertionError(f"no load defining {dest_base}")


def pts_objects(result, func, var_base):
    for name, objs in result.points_to.items():
        if base_name(name) == var_base and objs:
            return objs
    return ()


def test_malloc_allocation_site():
    func, result = analyze("fn f() { p = malloc(); return p; }")
    objs = pts_objects(result, func, "p")
    assert len(objs) == 1
    obj, cond = objs[0]
    assert isinstance(obj, AllocObject)
    assert cond is T.TRUE


def test_copy_propagates_pts():
    func, result = analyze("fn f() { p = malloc(); q = p; return q; }")
    p_objs = pts_objects(result, func, "p")
    q_objs = pts_objects(result, func, "q")
    assert p_objs == q_objs


def test_store_load_roundtrip():
    func, result = analyze(
        "fn f(a) { p = malloc(); *p = a; x = *p; return x; }"
    )
    load = find_load(func, "x")
    values = result.load_values[load.uid]
    assert len(values) == 1
    value, cond = values[0]
    assert isinstance(value, cfg.Var) and base_name(value.name) == "a"
    assert cond is T.TRUE


def test_strong_update_kills_old_value():
    func, result = analyze(
        "fn f(a, b) { p = malloc(); *p = a; *p = b; x = *p; return x; }"
    )
    load = find_load(func, "x")
    values = result.load_values[load.uid]
    assert len(values) == 1
    assert base_name(values[0][0].name) == "b"


def test_conditional_stores_get_gates():
    # The paper's Fig. 2(b) scenario: *ptr written in both branches; the
    # load must see both values under complementary conditions.
    func, result = analyze(
        """
        fn f(a, b, c) {
            p = malloc();
            if (c > 0) { *p = a; } else { *p = b; }
            x = *p;
            return x;
        }
        """
    )
    load = find_load(func, "x")
    values = dict(
        (base_name(v.name), cond) for v, cond in result.load_values[load.uid]
    )
    assert set(values) == {"a", "b"}
    # Conditions are complementary literals on the branch variable.
    cond_a, cond_b = values["a"], values["b"]
    assert cond_a is T.not_(cond_b) or cond_b is T.not_(cond_a)


def test_conditional_pointer_targets():
    func, result = analyze(
        """
        fn f(a, c) {
            p = malloc();
            q = malloc();
            if (c > 0) { r = p; } else { r = q; }
            *r = a;
            x = *r;
            return x;
        }
        """
    )
    r_objs = [objs for name, objs in result.points_to.items()
              if base_name(name) == "r" and len(objs) == 2]
    assert r_objs, "r should conditionally point to both allocations"


def test_param_deref_creates_aux_and_ref():
    func, result = analyze("fn f(q) { x = *q; return x; }")
    assert ("q", 1) in result.ref
    q_param = func.params[0]
    objs = result.points_to[q_param]
    assert len(objs) == 1
    assert isinstance(objs[0][0], AuxObject)
    assert objs[0][0].depth == 1


def test_param_store_records_mod():
    func, result = analyze("fn f(q, v) { *q = v; return 0; }")
    assert ("q", 1) in result.mod


def test_deep_deref_records_deep_ref():
    func, result = analyze("fn f(q) { x = **q; return x; }")
    assert ("q", 1) in result.ref
    assert ("q", 2) in result.ref


def test_store_through_loaded_pointer():
    func, result = analyze("fn f(q, v) { p = *q; *p = v; return 0; }")
    assert ("q", 1) in result.ref
    assert ("q", 2) in result.mod


def test_load_sees_value_through_two_levels():
    func, result = analyze(
        """
        fn f(a) {
            outer = malloc();
            inner = malloc();
            *outer = inner;
            *inner = a;
            x = **outer;
            return x;
        }
        """
    )
    load = find_load(func, "x")
    values = result.load_values[load.uid]
    assert any(
        isinstance(v, cfg.Var) and base_name(v.name) == "a" for v, _ in values
    )


def test_linear_solver_prunes_contradiction():
    # Store under c, load only meaningful under !c via a second object:
    # the merge of heap states must not produce a & !a conditions.
    func, result = analyze(
        """
        fn f(a, b, c) {
            p = malloc();
            if (c > 0) { *p = a; }
            if (c > 0) { x = *p; } else { x = b; }
            return x;
        }
        """
    )
    assert result.conditions_built > 0
    # No load value should carry an obviously-unsat condition.
    from repro.smt.linear_solver import LinearSolver

    checker = LinearSolver()
    for values in result.load_values.values():
        for _, cond in values:
            assert not checker.is_obviously_unsat(cond)


def test_loop_stores_unrolled_once():
    func, result = analyze(
        """
        fn f(a, n) {
            p = malloc();
            i = 0;
            while (i < n) { *p = a; i = i + 1; }
            x = *p;
            return x;
        }
        """
    )
    load = find_load(func, "x")
    # Soundy unroll-once: the loop body's store is not visible at the exit
    # load (back edges are cut).  The analysis must not crash and returns
    # the pre-loop (uninitialized) state.
    assert load.uid in result.load_values


def test_uninitialized_load_empty():
    func, result = analyze("fn f() { p = malloc(); x = *p; return x; }")
    load = find_load(func, "x")
    assert result.load_values[load.uid] == []


def test_call_receiver_opaque():
    func, result = analyze("fn f() { p = g(); x = p; return x; }")
    objs = pts_objects(result, func, "p")
    assert objs == ()


def test_requires_ssa():
    func = lower_function(parse_function("fn f() { return 0; }"))
    import pytest

    with pytest.raises(ValueError):
        PointsToAnalysis(func)
