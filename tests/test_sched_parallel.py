"""The parallel wave scheduler: identical results, crash containment.

The contract under test is the one the docs promise: ``jobs > 1``
changes wall-clock behaviour only — reports, diagnostics, and their
order are byte-identical to a serial run; a worker process that *dies*
(as opposed to raising) becomes a ``sched``-stage quarantine; a hung
worker becomes a timeout crash without hanging the run.
"""

import dataclasses
import os
import pickle
import time

import pytest

from repro import Pinpoint, UseAfterFreeChecker
from repro.lang.parser import parse_program
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.robust.budget import ResourceBudget
from repro.robust.diagnostics import STAGE_PREPARE, STAGE_SCHED
from repro.robust.faults import install_faults, reset_faults
from repro.sched import JOBS_ENV, resolve_jobs
from repro.sched.pool import WorkerCrash, WorkerPool
from repro.sched.scheduler import prepare_program

PROGRAM = """
fn helper(p) { x = *p; return x; }
fn touch(p) { *p = 7; return 0; }
fn chain(p) { t = touch(p); h = helper(p); return t + h; }
fn main() {
    p = malloc();
    free(p);
    y = chain(p);
    q = malloc();
    *q = 1;
    z = helper(q);
    free(q);
    return y + z;
}
"""


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    reset_faults()
    set_registry(MetricsRegistry())
    yield
    reset_faults()
    set_registry(MetricsRegistry())


def _snapshot(source, **kwargs):
    """(reports, diagnostics) of one run, as plain data."""
    engine = Pinpoint.from_source(source, **kwargs)
    result = engine.check(UseAfterFreeChecker())
    return (
        [dataclasses.asdict(r) for r in result.reports],
        [d.as_dict() for d in result.diagnostics],
    )


# ----------------------------------------------------------------------
# Determinism: parallel == serial
# ----------------------------------------------------------------------
def test_parallel_matches_serial_exactly():
    serial = _snapshot(PROGRAM)
    parallel = _snapshot(PROGRAM, jobs=2)
    assert parallel == serial


def test_parallel_matches_serial_with_worker_exception():
    # A worker-side Python exception must produce the same prepare-stage
    # quarantine diagnostic, in the same position, as a serial run.
    install_faults("prepare:helper")
    serial = _snapshot(PROGRAM)
    reset_faults()
    install_faults("prepare:helper")
    parallel = _snapshot(PROGRAM, jobs=2)
    assert parallel == serial
    diags = parallel[1]
    assert any(
        d["stage"] == STAGE_PREPARE and d["unit"] == "helper" for d in diags
    )


def test_dead_worker_becomes_sched_quarantine():
    # The `sched` fault site makes the worker process call os._exit —
    # a real process death, which no Python-level except can model.
    install_faults("sched:helper")
    reports, diags = _snapshot(PROGRAM, jobs=2)
    sched_diags = [d for d in diags if d["stage"] == STAGE_SCHED]
    assert len(sched_diags) == 1
    assert sched_diags[0]["unit"] == "helper"
    assert "died" in sched_diags[0]["detail"]
    # Innocent functions sharing the broken pool were retried: everything
    # except the killer (and no one else) is quarantined.
    assert {d["unit"] for d in diags if d["stage"] == STAGE_SCHED} == {"helper"}


def test_sched_fault_is_inert_in_serial_runs():
    install_faults("sched:helper")
    reports, diags = _snapshot(PROGRAM)
    assert not [d for d in diags if d["stage"] == STAGE_SCHED]


def test_limited_budget_forces_serial_fallback():
    program = parse_program(PROGRAM)
    budget = ResourceBudget(max_steps=10_000_000).start()
    prepared = prepare_program(program, jobs=4, budget=budget)
    assert len(prepared.functions) == 4
    registry = get_registry()
    assert registry.counter("sched.serial_fallback").total() == 1
    assert registry.gauge("sched.jobs").value() == 1


def test_scheduler_populates_segs_for_engine():
    prepared = prepare_program(parse_program(PROGRAM), jobs=2)
    assert set(prepared.segs) == set(prepared.functions)


# ----------------------------------------------------------------------
# resolve_jobs
# ----------------------------------------------------------------------
def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "8")
    assert resolve_jobs(2) == 2
    assert resolve_jobs() == 8


def test_resolve_jobs_degrades_on_garbage(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "many")
    assert resolve_jobs() == 1
    assert resolve_jobs("bogus") == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-3) == 1


# ----------------------------------------------------------------------
# WorkerPool unit tests (module-level task fns so they pickle on spawn
# platforms and are importable in forked children).
# ----------------------------------------------------------------------
def _echo_task(payload):
    return b"echo:" + payload


def _slow_task(payload):
    time.sleep(float(pickle.loads(payload)))
    return b"done"


def _exit_task(payload):
    if payload == b"die":
        os._exit(3)
    return b"ok:" + payload


def test_pool_runs_tasks_and_returns_bytes():
    with WorkerPool(2, task_fn=_echo_task) as pool:
        results = pool.run_wave([("a", b"1"), ("b", b"2")])
    assert results == {"a": b"echo:1", "b": b"echo:2"}


def test_pool_timeout_yields_crash_and_run_continues():
    fast = pickle.dumps(0.0)
    slow = pickle.dumps(30.0)
    with WorkerPool(2, task_fn=_slow_task, timeout=1.0) as pool:
        results = pool.run_wave([("slow", slow), ("fast", fast)])
    assert isinstance(results["slow"], WorkerCrash)
    assert results["slow"].timed_out
    assert results["fast"] == b"done"
    assert get_registry().counter("sched.worker_timeouts").total() >= 1


def test_pool_isolates_deterministic_killer():
    with WorkerPool(2, task_fn=_exit_task) as pool:
        results = pool.run_wave(
            [("good1", b"x"), ("killer", b"die"), ("good2", b"y")]
        )
    assert results["good1"] == b"ok:x"
    assert results["good2"] == b"ok:y"
    assert isinstance(results["killer"], WorkerCrash)
    assert get_registry().counter("sched.pool_rebuilds").total() >= 1
