"""Unit tests for the linear-time contradiction solver (paper Section 3.1.1)."""

from repro.smt import terms as T
from repro.smt.linear_solver import LinearSolver


def solver():
    return LinearSolver()


def test_atom_is_not_contradiction():
    assert not solver().is_obviously_unsat(T.bool_var("a"))


def test_a_and_not_a():
    a = T.bool_var("a")
    assert solver().is_obviously_unsat(T.and_(a, T.not_(a)))


def test_nested_contradiction():
    a, b, c = T.bool_var("a"), T.bool_var("b"), T.bool_var("c")
    cond = T.and_(a, b, T.and_(c, T.not_(a)))
    assert solver().is_obviously_unsat(cond)


def test_disjunction_weakens():
    a, b = T.bool_var("a"), T.bool_var("b")
    # (a | b) & !a is satisfiable (choose b): P((a|b)) = {} by intersection.
    cond = T.and_(T.or_(a, b), T.not_(a))
    assert not solver().is_obviously_unsat(cond)


def test_disjunction_common_atom():
    a, b, c = T.bool_var("a"), T.bool_var("b"), T.bool_var("c")
    # (a & b) | (a & c) has P = {a}; conjoined with !a -> contradiction.
    cond = T.and_(T.or_(T.and_(a, b), T.and_(a, c)), T.not_(a))
    assert solver().is_obviously_unsat(cond)


def test_negation_of_disjunction():
    a, b = T.bool_var("a"), T.bool_var("b")
    # !(a | b) & a == !a & !b & a -> contradiction.
    cond = T.and_(T.not_(T.or_(a, b)), a)
    assert solver().is_obviously_unsat(cond)


def test_comparison_atoms_pair_up():
    x, y = T.int_var("x"), T.int_var("y")
    cond = T.and_(T.eq(x, y), T.ne(x, y))
    assert solver().is_obviously_unsat(cond)


def test_lt_ge_pair_up():
    x, y = T.int_var("x"), T.int_var("y")
    cond = T.and_(T.lt(x, y), T.ge(x, y))
    assert solver().is_obviously_unsat(cond)


def test_gt_le_pair_up():
    x, y = T.int_var("x"), T.int_var("y")
    cond = T.and_(T.gt(x, y), T.le(x, y))
    assert solver().is_obviously_unsat(cond)


def test_semantic_unsat_not_caught():
    # x < y & y < x is unsatisfiable but NOT an easy a&!a contradiction;
    # the linear solver must pass it through to the SMT solver.
    x, y = T.int_var("x"), T.int_var("y")
    cond = T.and_(T.lt(x, y), T.lt(y, x))
    assert not solver().is_obviously_unsat(cond)


def test_true_false_shortcuts():
    s = solver()
    assert s.is_obviously_unsat(T.FALSE)
    assert not s.is_obviously_unsat(T.TRUE)


def test_stats_counting():
    s = solver()
    a = T.bool_var("a")
    s.is_obviously_unsat(a)
    s.is_obviously_unsat(T.and_(a, T.not_(a)))
    assert s.queries == 2
    assert s.pruned == 1


def test_atoms_accessor():
    a, b = T.bool_var("a"), T.bool_var("b")
    pos, neg = solver().atoms(T.and_(a, T.not_(b)))
    assert a in pos
    assert b in neg


def test_memoization_shares_subterms():
    s = solver()
    a = T.bool_var("a")
    big = T.and_(*[T.or_(a, T.bool_var(f"v{i}")) for i in range(50)])
    assert not s.is_obviously_unsat(big)
    assert not s.is_obviously_unsat(T.and_(big, T.bool_var("z")))
