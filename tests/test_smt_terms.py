"""Unit tests for the hash-consed term language."""

import pytest

from repro.smt import terms as T


def test_hash_consing_identity():
    a1 = T.bool_var("a")
    a2 = T.bool_var("a")
    assert a1 is a2
    assert T.and_(a1, T.bool_var("b")) is T.and_(T.bool_var("b"), a2)


def test_true_false_singletons():
    assert T.TRUE is T.FACTORY.true
    assert T.FALSE is T.FACTORY.false
    assert T.TRUE.is_boolean()
    assert not T.TRUE.is_atom()


def test_and_simplifications():
    a, b = T.bool_var("a"), T.bool_var("b")
    assert T.and_() is T.TRUE
    assert T.and_(a) is a
    assert T.and_(a, T.TRUE) is a
    assert T.and_(a, T.FALSE) is T.FALSE
    assert T.and_(a, a) is a
    assert T.and_(a, T.and_(b, a)) is T.and_(a, b)


def test_or_simplifications():
    a, b = T.bool_var("a"), T.bool_var("b")
    assert T.or_() is T.FALSE
    assert T.or_(a) is a
    assert T.or_(a, T.FALSE) is a
    assert T.or_(a, T.TRUE) is T.TRUE
    assert T.or_(a, T.or_(a, b)) is T.or_(a, b)


def test_not_simplifications():
    a = T.bool_var("a")
    assert T.not_(T.TRUE) is T.FALSE
    assert T.not_(T.FALSE) is T.TRUE
    assert T.not_(T.not_(a)) is a


def test_not_flips_comparisons():
    x, y = T.int_var("x"), T.int_var("y")
    assert T.not_(T.eq(x, y)) is T.ne(x, y)
    assert T.not_(T.lt(x, y)) is T.ge(x, y)
    assert T.not_(T.le(x, y)) is T.gt(x, y)
    assert T.not_(T.gt(x, y)) is T.le(x, y)


def test_comparison_constant_folding():
    one, two = T.const(1), T.const(2)
    assert T.lt(one, two) is T.TRUE
    assert T.ge(one, two) is T.FALSE
    assert T.eq(one, one) is T.TRUE
    assert T.ne(one, one) is T.FALSE


def test_comparison_reflexivity():
    x = T.int_var("x")
    assert T.eq(x, x) is T.TRUE
    assert T.ne(x, x) is T.FALSE
    assert T.le(x, x) is T.TRUE
    assert T.lt(x, x) is T.FALSE


def test_eq_symmetric_canonical():
    x, y = T.int_var("x"), T.int_var("y")
    assert T.eq(x, y) is T.eq(y, x)
    assert T.ne(x, y) is T.ne(y, x)


def test_eq_between_booleans_becomes_iff():
    a, b = T.bool_var("a"), T.bool_var("b")
    term = T.eq(a, b)
    # An iff over booleans must not be a raw theory atom.
    assert not term.is_atom() or term.kind == "bvar"
    assert term is T.iff(a, b)


def test_eq_bool_with_int_coerces():
    a = T.bool_var("a")
    x = T.int_var("x")
    term = T.eq(a, x)
    # x coerces to (x != 0); the result is boolean structure.
    assert term.is_boolean()
    assert not term.is_comparison() or term.kind == "ne"


def test_arith_folding():
    x = T.int_var("x")
    assert T.add(T.const(2), T.const(3)) is T.const(5)
    assert T.add(x, T.const(0)) is x
    assert T.sub(x, x) is T.const(0)
    assert T.mul(x, T.const(1)) is x
    assert T.mul(x, T.const(0)) is T.const(0)
    assert T.neg(T.neg(x)) is x
    assert T.neg(T.const(4)) is T.const(-4)


def test_implies_iff():
    a, b = T.bool_var("a"), T.bool_var("b")
    assert T.implies(a, b) is T.or_(T.not_(a), b)
    assert T.implies(T.FALSE, b) is T.TRUE
    assert T.iff(a, a) is T.TRUE


def test_variables_collection():
    x, y = T.int_var("x"), T.int_var("y")
    a = T.bool_var("a")
    term = T.and_(a, T.eq(T.add(x, T.const(1)), y))
    assert term.variables() == frozenset({"a", "x", "y"})


def test_rename():
    x, y = T.int_var("x"), T.int_var("y")
    term = T.eq(T.add(x, T.const(1)), y)
    renamed = T.FACTORY.rename(term, {"x": "x#1", "y": "y#1"})
    assert renamed.variables() == frozenset({"x#1", "y#1"})
    # Renaming with no applicable mapping is the identity.
    assert T.FACTORY.rename(term, {"z": "w"}) is term


def test_substitute():
    x, y = T.int_var("x"), T.int_var("y")
    term = T.eq(x, T.add(y, T.const(1)))
    result = T.FACTORY.substitute(term, {"y": T.const(2)})
    assert result is T.eq(x, T.const(3))


def test_str_roundtrip_smoke():
    a = T.bool_var("a")
    x = T.int_var("x")
    term = T.and_(a, T.or_(T.not_(a), T.lt(x, T.const(3))))
    text = str(term)
    assert "a" in text and "<" in text


def test_bool_var_vs_int_var_distinct():
    assert T.bool_var("v") is not T.int_var("v")
