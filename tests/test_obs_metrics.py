"""Metrics registry: counters/gauges/histograms and both export formats."""

import json
import math
import re

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    sanitize_metric_name,
    set_registry,
)


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
def test_counter_inc_and_labels():
    c = Counter("smt.queries")
    c.inc()
    c.inc(2, result="sat")
    assert c.value() == 1
    assert c.value(result="sat") == 2
    assert c.total() == 3


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").inc(-1)


def test_gauge_set_inc_dec():
    g = Gauge("depth")
    g.set(5)
    g.inc()
    g.dec(2)
    assert g.value() == 4


# ----------------------------------------------------------------------
# Histogram bucket edges
# ----------------------------------------------------------------------
def test_histogram_bucket_edges_are_le_inclusive():
    h = Histogram("lat", buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.0, 1.5, 2.0, 7.0):
        h.observe(value)
    dump = h.as_dict()
    counts = {b["le"]: b["count"] for b in dump["buckets"]}
    # Non-cumulative per-bucket counts: a value equal to a bound lands
    # in that bound's bucket (le semantics), 7.0 in +Inf.
    assert counts[1.0] == 2  # 0.5, 1.0
    assert counts[2.0] == 2  # 1.5, 2.0
    assert counts[5.0] == 0
    assert counts[math.inf] == 1
    assert dump["count"] == 5
    assert dump["sum"] == pytest.approx(12.0)


def test_histogram_prometheus_buckets_are_cumulative():
    registry = MetricsRegistry()
    h = registry.histogram("lat", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 9.0):
        h.observe(value)
    text = registry.to_prometheus()
    assert 'repro_lat_bucket{le="1"} 1' in text
    assert 'repro_lat_bucket{le="2"} 2' in text
    assert 'repro_lat_bucket{le="+Inf"} 3' in text
    assert "repro_lat_count 3" in text
    assert "repro_lat_sum 11" in text


def test_histogram_validates_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, math.inf))


def test_histogram_quantile_interpolates():
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    for _ in range(10):
        h.observe(1.5)  # all in the (1, 2] bucket
    q = h.quantile(0.5)
    assert 1.0 <= q <= 2.0
    assert h.quantile(0.0) == 0.0 or h.quantile(0.0) <= q
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_quantile_empty():
    assert Histogram("lat", buckets=(1.0,)).quantile(0.9) == 0.0


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_registry_registration_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("smt.queries", "help")
    b = registry.counter("smt.queries")
    assert a is b
    assert len(registry) == 1


def test_registry_rejects_kind_conflict():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_empty_registry_is_falsy_but_usable():
    # MetricsRegistry defines __len__, so an empty one is falsy; code
    # must never select it with ``registry or get_registry()``.
    registry = MetricsRegistry()
    assert not registry
    registry.counter("a").inc()
    assert registry


def test_global_registry_swap():
    old = get_registry()
    try:
        fresh = set_registry(MetricsRegistry())
        assert get_registry() is fresh
    finally:
        set_registry(old)


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def test_prometheus_name_sanitization():
    assert sanitize_metric_name("smt.queries") == "smt_queries"
    assert sanitize_metric_name("engine.summaries.hit") == "engine_summaries_hit"
    assert sanitize_metric_name("0bad") == "_0bad"


def test_prometheus_counter_gets_total_suffix_and_help():
    registry = MetricsRegistry()
    registry.counter("smt.queries", "SMT queries issued").inc(3)
    text = registry.to_prometheus()
    assert "# HELP repro_smt_queries_total SMT queries issued" in text
    assert "# TYPE repro_smt_queries_total counter" in text
    assert "repro_smt_queries_total 3" in text


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("errs").inc(reason='back\\slash "quote"\nnewline')
    text = registry.to_prometheus()
    assert (
        'repro_errs_total{reason="back\\\\slash \\"quote\\"\\nnewline"} 1'
        in text
    )


def test_prometheus_help_escaping():
    registry = MetricsRegistry()
    registry.counter("x", "line1\nline2 \\ slash").inc()
    help_line = next(
        line for line in registry.to_prometheus().splitlines()
        if line.startswith("# HELP")
    )
    assert "\n" not in help_line
    assert "line1\\nline2 \\\\ slash" in help_line


def test_prometheus_output_shape():
    registry = MetricsRegistry()
    registry.counter("a", "ha").inc(labels_are="fine")
    registry.gauge("b").set(2.5)
    registry.histogram("c", buckets=(1.0,)).observe(0.5)
    text = registry.to_prometheus()
    sample = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+\-]+$|^\# (HELP|TYPE) .+$"
    )
    for line in text.strip().splitlines():
        assert sample.match(line), line
    assert text.endswith("\n")


# ----------------------------------------------------------------------
# JSON export
# ----------------------------------------------------------------------
def test_as_dict_round_trips_through_json():
    registry = MetricsRegistry()
    registry.counter("plain").inc(2)
    registry.counter("labeled").inc(checker="uaf")
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=(1.0,)).observe(0.2)
    dump = registry.as_dict()
    assert dump["plain"] == {"type": "counter", "value": 2}
    assert dump["labeled"]["values"][0]["labels"] == {"checker": "uaf"}
    assert dump["h"]["count"] == 1
    # Everything except the histogram's inf bound must be JSON-safe.
    text = json.dumps(dump)
    assert "plain" in text


def test_write_json_vs_prom(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").inc()
    json_path = tmp_path / "m.json"
    prom_path = tmp_path / "m.prom"
    registry.write(str(json_path))
    registry.write(str(prom_path))
    assert json.loads(json_path.read_text())["a"]["value"] == 1
    assert "repro_a_total 1" in prom_path.read_text()


# ----------------------------------------------------------------------
# Cross-process merging (how scheduler workers report)
# ----------------------------------------------------------------------
def test_merge_adds_counters_per_labelset():
    parent = MetricsRegistry()
    parent.counter("smt.queries").inc(2)
    parent.counter("smt.queries").inc(1, result="sat")
    worker = MetricsRegistry()
    worker.counter("smt.queries").inc(3)
    worker.counter("smt.queries").inc(4, result="unsat")
    worker.counter("cache.hits").inc()
    assert parent.merge(worker) is parent
    queries = parent.counter("smt.queries")
    assert queries.value() == 5
    assert queries.value(result="sat") == 1
    assert queries.value(result="unsat") == 4
    assert parent.counter("cache.hits").value() == 1


def test_merge_gauges_last_writer_wins():
    parent = MetricsRegistry()
    parent.gauge("sched.jobs").set(1)
    worker = MetricsRegistry()
    worker.gauge("sched.jobs").set(4)
    parent.merge(worker)
    assert parent.gauge("sched.jobs").value() == 4


def test_merge_histograms_adds_buckets():
    buckets = (1.0, 10.0)
    parent = MetricsRegistry()
    parent.histogram("t", buckets=buckets).observe(0.5)
    worker = MetricsRegistry()
    worker.histogram("t", buckets=buckets).observe(5.0)
    worker.histogram("t", buckets=buckets).observe(50.0)
    parent.merge(worker)
    merged = parent.histogram("t", buckets=buckets)
    assert merged.count() == 3
    assert merged.sum() == 55.5


def test_merge_histogram_bucket_mismatch_raises():
    parent = MetricsRegistry()
    parent.histogram("t", buckets=(1.0,)).observe(0.5)
    worker = MetricsRegistry()
    worker.histogram("t", buckets=(2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        parent.merge(worker)


def test_merge_chains_and_registry_survives_pickling():
    import pickle

    worker = MetricsRegistry()
    worker.counter("a").inc()
    worker.gauge("b").set(2)
    worker.histogram("c", buckets=(1.0,)).observe(0.5)
    revived = pickle.loads(pickle.dumps(worker))
    parent = MetricsRegistry().merge(revived).merge(revived)
    assert parent.counter("a").value() == 2
    assert parent.histogram("c", buckets=(1.0,)).count() == 2
