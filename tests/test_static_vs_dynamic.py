"""Cross-validation: static reports vs dynamic behavior.

The interpreter is the ground-truth oracle for the static analyses:

- every "bad" Juliet case must exhibit its seeded violation at runtime
  for some small input (the seeded bugs are real, not artifacts of the
  static model);
- every "good" twin must run clean on all probed inputs;
- Pinpoint's reports on the suite agree with the dynamic oracle.
"""

import pytest

from repro.lang.interp import run_function
from repro.lang.parser import parse_program
from repro.synth.juliet import generate_juliet_suite
from repro.synth.generator import GeneratorConfig, generate_program

PROBE_INPUTS = [-3, 0, 2, 5, 50]


def dynamic_violations(program, function, kinds):
    """Violation kinds observed over the probe inputs."""
    observed = set()
    for value in PROBE_INPUTS:
        interp = run_function(program, function, value, halt_on_violation=False)
        observed.update(v.kind for v in interp.violations)
    return observed & kinds


@pytest.mark.parametrize("case", generate_juliet_suite(), ids=lambda c: f"v{c.ident}")
def test_juliet_bad_cases_misbehave_dynamically(case):
    program = parse_program(case.source)
    expected = {"use-after-free"} if case.bug_kind == "uaf" else {"double-free"}
    observed = dynamic_violations(program, case.bad_function, expected)
    assert observed, (
        f"case {case.ident} ({case.route}/{case.control}) never violated "
        f"{expected} on inputs {PROBE_INPUTS}"
    )


@pytest.mark.parametrize("case", generate_juliet_suite(), ids=lambda c: f"v{c.ident}")
def test_juliet_good_twins_run_clean(case):
    program = parse_program(case.source)
    kinds = {"use-after-free", "double-free"}
    observed = dynamic_violations(program, case.good_function, kinds)
    assert not observed, f"good twin of case {case.ident} violated: {observed}"


def test_generated_true_bugs_misbehave_dynamically():
    """Every seeded true bug in a generated program is dynamically real."""
    program_spec = generate_program(GeneratorConfig(seed=77, target_lines=1200))
    program = parse_program(program_spec.source)
    for truth in program_spec.true_bugs():
        entry = truth.functions[-1]  # the *_main driver
        observed = dynamic_violations(program, entry, {"use-after-free"})
        assert observed, f"seeded {truth.kind} in {entry} never misbehaved"


def test_generated_traps_run_clean():
    """The seeded traps are genuinely safe code: no dynamic violation on
    any probed input (they're only *reported* by imprecise tools)."""
    program_spec = generate_program(GeneratorConfig(seed=77, target_lines=1200))
    program = parse_program(program_spec.source)
    for truth in program_spec.traps():
        if truth.is_loop_fp:
            continue  # loop FPs are safe too, but probed separately below
        entry = truth.functions[-1]
        observed = dynamic_violations(
            program, entry, {"use-after-free", "double-free"}
        )
        assert not observed, f"trap {truth.kind} in {entry} actually violated!"


def test_loop_fp_seeds_are_dynamically_safe():
    """The loop-imprecision seeds never misbehave at runtime — they are
    true false positives of the unroll-once static model."""
    program_spec = generate_program(
        GeneratorConfig(seed=77, target_lines=4000)
    )
    program = parse_program(program_spec.source)
    seeds = [t for t in program_spec.ground_truth if t.is_loop_fp]
    assert seeds, "expected loop-fp seeds at this scale"
    for truth in seeds:
        entry = truth.functions[-1]
        for n in PROBE_INPUTS:
            interp = run_function(
                program, entry, n, 1, halt_on_violation=False
            )
            kinds = {v.kind for v in interp.violations}
            assert "use-after-free" not in kinds, (
                f"{entry} misbehaved with n={n}: the seed is not a true FP"
            )


def test_filler_clusters_run_clean():
    """The safe filler code (root drivers) never violates."""
    program_spec = generate_program(GeneratorConfig(seed=5, target_lines=600))
    program = parse_program(program_spec.source)
    roots = [f.name for f in program.functions if f.name.endswith("_root")]
    assert roots
    for root in roots[:10]:
        observed = dynamic_violations(
            program, root, {"use-after-free", "double-free"}
        )
        assert not observed, f"filler {root} violated"
