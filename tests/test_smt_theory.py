"""Corner-case tests for the theory solver and the DPLL(T) loop."""

import pytest

from repro.smt import terms as T
from repro.smt.solver import Result, SMTSolver
from repro.smt.theory import TheorySolver


def consistent(atoms):
    return TheorySolver().check(atoms) is None


# ----------------------------------------------------------------------
# Equality / congruence
# ----------------------------------------------------------------------
def test_transitive_equality_chain():
    xs = [T.int_var(f"x{i}") for i in range(6)]
    atoms = [(T.eq(a, b), True) for a, b in zip(xs, xs[1:])]
    atoms.append((T.eq(xs[0], xs[-1]), False))
    assert not consistent(atoms)


def test_disequality_between_distinct_classes_ok():
    x, y, z = (T.int_var(n) for n in "xyz")
    atoms = [(T.eq(x, y), True), (T.ne(y, z), True)]
    assert consistent(atoms)


def test_negated_ne_is_equality():
    x, y = T.int_var("x"), T.int_var("y")
    atoms = [(T.ne(x, y), False), (T.eq(x, T.const(1)), True), (T.eq(y, T.const(2)), True)]
    assert not consistent(atoms)


def test_congruence_over_nested_arith():
    x, y = T.int_var("x"), T.int_var("y")
    fx = T.add(T.add(x, T.const(1)), T.const(2))
    fy = T.add(T.add(y, T.const(1)), T.const(2))
    atoms = [(T.eq(x, y), True), (T.ne(fx, fy), True)]
    assert not consistent(atoms)


def test_constants_in_same_class_conflict():
    x = T.int_var("x")
    atoms = [(T.eq(x, T.const(3)), True), (T.eq(x, T.const(4)), True)]
    assert not consistent(atoms)


# ----------------------------------------------------------------------
# Orders / bounds
# ----------------------------------------------------------------------
def test_long_strict_chain_cycle():
    xs = [T.int_var(f"c{i}") for i in range(5)]
    atoms = [(T.lt(a, b), True) for a, b in zip(xs, xs[1:])]
    atoms.append((T.lt(xs[-1], xs[0]), True))
    assert not consistent(atoms)


def test_nonstrict_cycle_ok():
    x, y = T.int_var("x"), T.int_var("y")
    atoms = [(T.le(x, y), True), (T.le(y, x), True)]
    assert consistent(atoms)


def test_bounds_sandwich_conflict():
    x = T.int_var("x")
    atoms = [
        (T.gt(x, T.const(5)), True),
        (T.lt(x, T.const(5)), True),
    ]
    assert not consistent(atoms)


def test_bounds_meet_exactly():
    x = T.int_var("x")
    atoms = [
        (T.ge(x, T.const(5)), True),
        (T.le(x, T.const(5)), True),
    ]
    assert consistent(atoms)


def test_order_with_equality_propagation():
    x, y = T.int_var("x"), T.int_var("y")
    atoms = [
        (T.eq(x, T.const(10)), True),
        (T.eq(y, T.const(3)), True),
        (T.lt(x, y), True),
    ]
    assert not consistent(atoms)


def test_negated_order_atoms():
    x = T.int_var("x")
    # !(x < 5) and !(x > 5) means x == 5: consistent.
    atoms = [
        (T.lt(x, T.const(5)), False),
        (T.gt(x, T.const(5)), False),
    ]
    assert consistent(atoms)


def test_bool_vars_have_no_theory_content():
    atoms = [(T.bool_var("a"), True), (T.bool_var("b"), False)]
    assert consistent(atoms)


# ----------------------------------------------------------------------
# DPLL(T) interaction
# ----------------------------------------------------------------------
def test_boolean_structure_forces_theory_conflict():
    x = T.int_var("x")
    a = T.bool_var("a")
    cond = T.and_(
        T.or_(a, T.eq(x, T.const(1))),
        T.or_(a, T.eq(x, T.const(2))),
        T.not_(a),
    )
    assert SMTSolver().check(cond) is Result.UNSAT


def test_theory_blocking_finds_other_model():
    # First boolean model may pick both (x<y) and (y<x); blocking must
    # recover and find the consistent assignment.
    x, y = T.int_var("x"), T.int_var("y")
    cond = T.and_(
        T.or_(T.lt(x, y), T.lt(y, x)),
        T.or_(T.lt(x, y), T.eq(x, y)),
    )
    assert SMTSolver().check(cond) is Result.SAT


def test_large_conjunction_of_independent_atoms():
    parts = []
    for i in range(40):
        v = T.int_var(f"v{i}")
        parts.append(T.gt(v, T.const(i)))
        parts.append(T.lt(v, T.const(i + 10)))
    assert SMTSolver().check(T.and_(*parts)) is Result.SAT


def test_deep_nested_structure():
    a = T.bool_var("a")
    term = a
    for i in range(30):
        term = T.or_(T.and_(term, T.bool_var(f"g{i}")), T.bool_var(f"h{i}"))
    assert SMTSolver().check(term) is Result.SAT


def test_iff_chains():
    names = [T.bool_var(f"b{i}") for i in range(10)]
    chain = T.and_(*(T.iff(a, b) for a, b in zip(names, names[1:])))
    assert SMTSolver().check(T.and_(chain, names[0], names[-1])) is Result.SAT
    assert (
        SMTSolver().check(T.and_(chain, names[0], T.not_(names[-1])))
        is Result.UNSAT
    )
