"""Tests for verify-mode resolution, engine-side quarantine wiring, and
the ``repro selfcheck`` differential harness."""

import pytest

from repro.core.engine import EngineConfig, Pinpoint
from repro.core.pipeline import prepare_source
from repro.ir import cfg
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.robust.diagnostics import DiagnosticLog, STAGE_VERIFY
from repro.verify import (
    MODE_FAST,
    MODE_OFF,
    Violation,
    record_violations,
    resolve_mode,
)
from repro.verify.selfcheck import parse_seed_spec, run_selfcheck

SOURCE = """
fn callee(p) {
    *p = 1;
    free(p);
    return 0;
}

fn main(a) {
    if (a > 3) { x = 1; } else { x = 2; }
    q = malloc();
    r = callee(q);
    return x;
}
"""


@pytest.fixture(autouse=True)
def fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


# ----------------------------------------------------------------------
# Mode resolution
# ----------------------------------------------------------------------
def test_resolve_mode_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "full")
    assert resolve_mode("fast") == "fast"


def test_resolve_mode_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "fast")
    assert resolve_mode() == MODE_FAST
    monkeypatch.delenv("REPRO_VERIFY")
    assert resolve_mode() == MODE_OFF


def test_resolve_mode_rejects_garbage(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    with pytest.raises(ValueError):
        resolve_mode("loud")
    monkeypatch.setenv("REPRO_VERIFY", "bogus")
    with pytest.raises(ValueError):
        resolve_mode()


def test_engine_config_rejects_bad_verify():
    with pytest.raises(ValueError):
        EngineConfig(verify="loud")


# ----------------------------------------------------------------------
# record_violations: dedup, severity split, metrics
# ----------------------------------------------------------------------
def test_record_violations_severity_and_dedup():
    log = DiagnosticLog()
    violations = [
        Violation("ssa-single-def", "f", "x redefined"),
        Violation("summary-interface", "f", "stranger"),
        # Same rule+unit+line as the first: dedups in the log, still
        # counts in the metric.
        Violation("ssa-single-def", "f", "y redefined"),
    ]
    errors = record_violations(violations, log)
    assert [v.rule for v in errors] == ["ssa-single-def", "ssa-single-def"]
    reasons = sorted(d.reason for d in log)
    assert reasons == [
        "invariant-violation:ssa-single-def",
        "invariant-violation:summary-interface",
    ]
    assert all(d.stage == STAGE_VERIFY for d in log)


# ----------------------------------------------------------------------
# Engine wiring: violating functions are quarantined, not fatal
# ----------------------------------------------------------------------
def test_engine_quarantines_seg_verify_failure():
    module = prepare_source(SOURCE)
    # Break the Fig. 3 contract after preparation: the signature now
    # advertises an Aux formal the function body does not have.
    module["callee"].signature.aux_params.append(("ghost", 1))
    engine = Pinpoint(module, EngineConfig(verify="fast"))
    assert "callee" not in engine.functions
    assert "main" in engine.functions  # only the offender is dropped
    assert "callee" in engine.verify_failures
    kind, artifact = engine.verify_failures["callee"]
    assert kind == "seg"
    diags = [d for d in engine.diagnostics if d.stage == STAGE_VERIFY]
    assert diags and diags[0].unit == "callee"
    assert diags[0].reason == "invariant-violation:aux-pairing"


def test_engine_full_mode_drops_caller_on_call_mismatch():
    module = prepare_source(SOURCE)
    call = next(
        instr
        for instr in module["main"].function.all_instrs()
        if isinstance(instr, cfg.Call) and instr.callee == "callee"
    )
    call.extra_receivers.append("ghost_recv.1")
    engine = Pinpoint(module, EngineConfig(verify="full"))
    assert "main" not in engine.functions
    assert "callee" in engine.functions
    diags = [d for d in engine.diagnostics if d.stage == STAGE_VERIFY]
    assert any(
        d.reason == "invariant-violation:call-aux-pairing" for d in diags
    )


def test_verify_off_ignores_corruption():
    module = prepare_source(SOURCE)
    module["callee"].signature.aux_params.append(("ghost", 1))
    engine = Pinpoint(module, EngineConfig(verify="off"))
    assert "callee" in engine.functions
    assert not engine.verify_failures


def test_clean_run_with_full_verify_has_no_verify_diagnostics():
    engine = Pinpoint.from_source(SOURCE, EngineConfig(verify="full"))
    assert not engine.verify_failures
    assert not [d for d in engine.diagnostics if d.stage == STAGE_VERIFY]


# ----------------------------------------------------------------------
# Seed specs
# ----------------------------------------------------------------------
def test_parse_seed_spec_ranges_and_lists():
    assert parse_seed_spec("0..3") == [0, 1, 2, 3]
    assert parse_seed_spec("1,4,10..12") == [1, 4, 10, 11, 12]
    assert parse_seed_spec(" 7 ") == [7]


def test_parse_seed_spec_rejects_empty_and_reversed():
    with pytest.raises(ValueError):
        parse_seed_spec("")
    with pytest.raises(ValueError):
        parse_seed_spec("5..2")
    with pytest.raises(ValueError):
        parse_seed_spec("one")


# ----------------------------------------------------------------------
# The differential harness itself
# ----------------------------------------------------------------------
def test_selfcheck_passes_on_small_corpus():
    report = run_selfcheck([0, 1], lines=250)
    assert report.ok
    assert report.mode == "full"
    assert len(report.outcomes) == 2
    recall = report.recall_by_kind()
    assert recall, "corpus should seed at least one true defect kind"
    assert all(value == 1.0 for value in recall.values())
    for outcome in report.outcomes:
        assert outcome.ok
        assert not outcome.trap_reports
        assert not outcome.oracle_disagreements
        assert outcome.verify_violations == 0
        assert outcome.reports >= sum(outcome.total_by_kind.values())


def test_selfcheck_report_as_dict_shape():
    report = run_selfcheck([3], lines=250, oracle=False)
    data = report.as_dict()
    assert data["ok"] is True
    assert data["oracle"] is False
    assert data["checker"] == "use-after-free"
    assert data["seeds"][0]["seed"] == 3
    assert set(data) >= {
        "recall_by_kind",
        "trap_reports",
        "range_trap_reports",
        "other_false_positives",
        "verify_violations",
        "oracle_disagreements",
    }


def test_selfcheck_counts_verifier_violations_as_failure(monkeypatch):
    import repro.verify as verify_mod

    # A harness that passes while invariants are broken proves nothing:
    # force a violation and the seed must come back not-ok.
    monkeypatch.setattr(
        verify_mod,
        "verify_seg",
        lambda seg, prepared: [
            Violation("seg-dangling-edge", prepared.name, "injected")
        ],
    )
    report = run_selfcheck([0], lines=250, oracle=False)
    assert not report.ok
    assert report.outcomes[0].verify_violations > 0
