"""Tests for atomic artifact exports (repro.obs.export and the CLI
--metrics-out / --trace paths built on it)."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.export import atomic_write, ensure_parent_dir

UAF = """
fn main() {
    p = malloc();
    free(p);
    x = *p;
    return x;
}
"""


@pytest.fixture
def uaf_file(tmp_path):
    path = tmp_path / "uaf.pin"
    path.write_text(UAF)
    return str(path)


def test_atomic_write_creates_parent_dirs(tmp_path):
    target = tmp_path / "a" / "b" / "out.json"
    atomic_write(str(target), "{}\n")
    assert target.read_text() == "{}\n"


def test_atomic_write_replaces_existing(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("old")
    atomic_write(str(target), "new")
    assert target.read_text() == "new"


def test_atomic_write_leaves_no_temp_files(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write(str(target), "x" * 10_000)
    assert os.listdir(tmp_path) == ["out.txt"]


def test_atomic_write_failure_cleans_temp(tmp_path):
    class Exploding:
        def __str__(self):
            raise RuntimeError("boom")

    target = tmp_path / "out.txt"
    target.write_text("original")
    with pytest.raises(TypeError):
        atomic_write(str(target), Exploding())  # write() rejects non-str
    # the original is untouched and no temp file was left behind
    assert target.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_ensure_parent_dir_tolerates_bare_filename(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    ensure_parent_dir("bare.txt")  # no parent component: must not raise


def test_cli_metrics_out_nested_dir(uaf_file, tmp_path):
    target = tmp_path / "artifacts" / "deep" / "metrics.json"
    main(["check", uaf_file, "--metrics-out", str(target)])
    payload = json.loads(target.read_text())
    assert any(name.startswith("engine.") for name in payload)
    assert os.listdir(target.parent) == ["metrics.json"]


def test_cli_metrics_out_prometheus_text(uaf_file, tmp_path):
    target = tmp_path / "metrics.prom"
    main(["check", uaf_file, "--metrics-out", str(target)])
    text = target.read_text()
    assert "# TYPE repro_" in text


def test_cli_trace_nested_dir(uaf_file, tmp_path):
    target = tmp_path / "artifacts" / "trace.json"
    main(["check", uaf_file, "--trace", str(target)])
    events = json.loads(target.read_text())["traceEvents"]
    assert events, "trace export produced no events"
    assert os.listdir(target.parent) == ["trace.json"]
