"""Unit tests for the surface-language parser."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse_function, parse_program


def test_empty_function():
    func = parse_function("fn f() { }")
    assert func.name == "f"
    assert func.params == []
    assert func.body.stmts == []


def test_params():
    func = parse_function("fn f(a, b, c) { return a; }")
    assert func.params == ["a", "b", "c"]


def test_assignment_and_return():
    func = parse_function("fn f(a) { x = a + 1; return x; }")
    assign = func.body.stmts[0]
    assert isinstance(assign, ast.AssignStmt)
    assert assign.target == "x"
    assert isinstance(assign.value, ast.Binary)
    assert assign.value.op == "+"
    ret = func.body.stmts[1]
    assert isinstance(ret, ast.ReturnStmt)
    assert isinstance(ret.value, ast.Name)


def test_store_depths():
    func = parse_function("fn f(p, v) { *p = v; **p = v; }")
    store1 = func.body.stmts[0]
    store2 = func.body.stmts[1]
    assert isinstance(store1, ast.StoreStmt) and store1.depth == 1
    assert isinstance(store2, ast.StoreStmt) and store2.depth == 2


def test_load_depths():
    func = parse_function("fn f(p) { x = *p; y = **p; return y; }")
    load1 = func.body.stmts[0].value
    load2 = func.body.stmts[1].value
    assert isinstance(load1, ast.Unary) and load1.op == "*"
    assert isinstance(load2, ast.Unary)
    assert isinstance(load2.operand, ast.Unary)


def test_if_else():
    func = parse_function(
        "fn f(a) { if (a != 0) { x = 1; } else { x = 2; } return x; }"
    )
    branch = func.body.stmts[0]
    assert isinstance(branch, ast.IfStmt)
    assert isinstance(branch.cond, ast.Binary)
    assert branch.cond.op == "!="
    assert branch.else_block is not None


def test_else_if_chain():
    func = parse_function(
        "fn f(a) { if (a < 0) { x = 1; } else if (a < 10) { x = 2; } else { x = 3; } return x; }"
    )
    outer = func.body.stmts[0]
    assert isinstance(outer, ast.IfStmt)
    nested = outer.else_block.stmts[0]
    assert isinstance(nested, ast.IfStmt)
    assert nested.else_block is not None


def test_while_loop():
    func = parse_function("fn f(n) { i = 0; while (i < n) { i = i + 1; } return i; }")
    loop = func.body.stmts[1]
    assert isinstance(loop, ast.WhileStmt)


def test_call_statement_and_expression():
    func = parse_function("fn f(p) { free(p); x = bar(p, 1); return x; }")
    call_stmt = func.body.stmts[0]
    assert isinstance(call_stmt, ast.ExprStmt)
    assert isinstance(call_stmt.expr, ast.Call)
    assert call_stmt.expr.callee == "free"
    assign = func.body.stmts[1]
    assert isinstance(assign.value, ast.Call)
    assert len(assign.value.args) == 2


def test_null_true_false_literals():
    func = parse_function("fn f() { a = null; b = true; c = false; return a; }")
    values = [stmt.value for stmt in func.body.stmts[:3]]
    assert [v.value for v in values] == [0, 1, 0]


def test_operator_precedence():
    func = parse_function("fn f(a, b) { x = a + b * 2 < 10 && b > 0; return x; }")
    expr = func.body.stmts[0].value
    assert isinstance(expr, ast.Binary) and expr.op == "&&"
    assert expr.lhs.op == "<"
    assert expr.lhs.lhs.op == "+"
    assert expr.lhs.lhs.rhs.op == "*"


def test_parenthesized():
    func = parse_function("fn f(a, b) { x = (a + b) * 2; return x; }")
    expr = func.body.stmts[0].value
    assert expr.op == "*"
    assert expr.lhs.op == "+"


def test_comments():
    source = """
    // leading comment
    fn f(a) {
        # hash comment
        x = a; // trailing
        return x;
    }
    """
    func = parse_function(source)
    assert len(func.body.stmts) == 2


def test_multiple_functions():
    program = parse_program("fn a() { } fn b() { }")
    assert [f.name for f in program.functions] == ["a", "b"]
    assert program.function("b").name == "b"
    with pytest.raises(KeyError):
        program.function("c")


def test_line_numbers():
    source = "fn f(a) {\n  x = a;\n  return x;\n}"
    func = parse_function(source)
    assert func.body.stmts[0].line == 2
    assert func.body.stmts[1].line == 3


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_program("fn f( { }")
    with pytest.raises(ParseError):
        parse_program("fn f() { x = ; }")
    with pytest.raises(ParseError):
        parse_program("fn f() { @ }")
    with pytest.raises(ParseError):
        parse_program("garbage")


def test_line_count_proxy():
    program = parse_program(
        "fn f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }"
    )
    assert program.line_count() >= 4


def test_unary_operators():
    func = parse_function("fn f(a) { x = -a; y = !a; return y; }")
    assert func.body.stmts[0].value.op == "-"
    assert func.body.stmts[1].value.op == "!"
