"""The on-disk artifact store (repro.cache.store)."""

import os
import pickle

import pytest

from repro.cache.keys import (
    SCHEMA_VERSION,
    ast_fingerprint,
    key_digest,
    prepare_cache_key,
    signature_fingerprint,
)
from repro.cache.store import (
    CACHE_DIR_ENV,
    SummaryStore,
    open_store,
    resolve_cache_dir,
)
from repro.lang.parser import parse_program
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

DIGEST = "ab" + "0" * 62


@pytest.fixture(autouse=True)
def _fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


@pytest.fixture
def store(tmp_path):
    return SummaryStore(str(tmp_path / "cache"))


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def test_resolve_cache_dir_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, "/from/env")
    assert resolve_cache_dir("/explicit") == "/explicit"
    assert resolve_cache_dir() == "/from/env"
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert resolve_cache_dir() == ""


def test_open_store_none_when_unset(monkeypatch, tmp_path):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert open_store(None) is None
    assert open_store("") is None
    opened = open_store(str(tmp_path / "c"))
    assert isinstance(opened, SummaryStore)


# ----------------------------------------------------------------------
# Round trips and the miss ladder
# ----------------------------------------------------------------------
def test_empty_store_misses(store):
    assert store.get(DIGEST) is None
    assert get_registry().counter("cache.misses").total() == 1


def test_put_get_roundtrip(store):
    artifact = {"points_to": [1, 2, 3], "signature": ("p",)}
    assert store.put(DIGEST, "helper", artifact, seg={"vertices": 4})
    loaded = store.get(DIGEST)
    assert loaded == ("helper", artifact, {"vertices": 4})
    registry = get_registry()
    assert registry.counter("cache.writes").total() == 1
    assert registry.counter("cache.hits").total() == 1


def test_corrupt_entry_is_evicted_as_a_miss(store):
    store.put(DIGEST, "helper", "artifact")
    path = store._path(DIGEST)
    with open(path, "wb") as handle:
        handle.write(b"\x80\x04 this is not a pickle")
    assert store.get(DIGEST) is None
    assert not os.path.exists(path)
    assert get_registry().counter("cache.evictions").total() == 1


def test_wrong_shape_payload_is_evicted(store):
    path = store._path(DIGEST)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(["not", "a", "triple", "at", "all"], handle)
    assert store.get(DIGEST) is None
    assert not os.path.exists(path)


def test_unpicklable_artifact_fails_softly(store, tmp_path):
    assert not store.put(DIGEST, "helper", lambda: None)
    assert store.get(DIGEST) is None
    # The temp file was cleaned up: nothing but directories remain.
    leftovers = [
        name
        for _dir, _subdirs, names in os.walk(str(tmp_path / "cache"))
        for name in names
    ]
    assert leftovers == []


def test_entries_and_clear(store):
    digests = [f"{i:02x}" + "0" * 62 for i in range(3)]
    for digest in digests:
        store.put(digest, "f", digest)
    assert store.entries() == sorted(digests)
    assert store.clear() == 3
    assert store.entries() == []
    assert store.get(digests[0]) is None


def test_stats_shape(store):
    store.put(DIGEST, "helper", "artifact")
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert stats["schema_version"] == SCHEMA_VERSION


# ----------------------------------------------------------------------
# Versioned invalidation
# ----------------------------------------------------------------------
def test_stale_schema_versions_pruned_on_open(tmp_path):
    root = str(tmp_path / "cache")
    old = SummaryStore(root, version=SCHEMA_VERSION + 1)
    old.put(DIGEST, "helper", "artifact-from-the-future")
    fresh = SummaryStore(root)
    assert fresh.pruned_versions == 1
    assert not os.path.isdir(os.path.join(root, f"v{SCHEMA_VERSION + 1}"))
    assert fresh.get(DIGEST) is None
    # Same-version entries survive a reopen untouched.
    fresh.put(DIGEST, "helper", "current")
    again = SummaryStore(root)
    assert again.pruned_versions == 0
    assert again.get(DIGEST) == ("helper", "current", None)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
SOURCE = """
fn helper(p) { x = *p; return x; }
fn main() { p = malloc(); y = helper(p); free(p); return y; }
"""


def _func(source, name):
    program = parse_program(source)
    return next(f for f in program.functions if f.name == name)


def test_ast_fingerprint_ignores_formatting():
    helper = _func(SOURCE, "helper")
    reformatted = _func(
        SOURCE.replace(
            "fn helper(p) { x = *p; return x; }",
            "// comment\nfn helper(p) {\n    x = *p;\n    return x;\n}",
        ),
        "helper",
    )
    assert ast_fingerprint(helper) == ast_fingerprint(reformatted)


def test_ast_fingerprint_sees_body_edits():
    helper = _func(SOURCE, "helper")
    edited = _func(SOURCE.replace("x = *p;", "x = *p; *p = 0;"), "helper")
    assert ast_fingerprint(helper) != ast_fingerprint(edited)


def test_cache_key_ignores_uncalled_functions():
    main = _func(SOURCE, "main")

    class Sig:
        params = ("p",)
        aux_params = ()
        aux_returns = ()

    called = {"helper": Sig()}
    with_stranger = {"helper": Sig(), "stranger": Sig()}
    key_a = prepare_cache_key(main, called, {"helper"})
    key_b = prepare_cache_key(main, with_stranger, {"helper"})
    assert key_a == key_b
    assert key_digest(key_a) == key_digest(key_b)


def test_cache_key_sees_interface_changes():
    main = _func(SOURCE, "main")

    class Sig:
        def __init__(self, aux):
            self.params = ("p",)
            self.aux_params = aux
            self.aux_returns = ()

    key_a = prepare_cache_key(main, {"helper": Sig(())}, {"helper"})
    key_b = prepare_cache_key(main, {"helper": Sig(("p_aux",))}, {"helper"})
    assert key_a != key_b
    assert key_digest(key_a) != key_digest(key_b)
    assert signature_fingerprint(Sig(())) != signature_fingerprint(
        Sig(("p_aux",))
    )
