"""Harder engine scenarios: deep chains, connectors at depth, context
separation, recursion, externals."""

import pytest

from repro import (
    DoubleFreeChecker,
    EngineConfig,
    NullDereferenceChecker,
    Pinpoint,
    UseAfterFreeChecker,
)


def check_uaf(source: str, config=None):
    return Pinpoint.from_source(source, config).check(UseAfterFreeChecker())


# ----------------------------------------------------------------------
# Deep call chains (the paper scans six levels of calls)
# ----------------------------------------------------------------------
def test_five_level_free_chain():
    result = check_uaf(
        """
        fn l5(p) { free(p); return 0; }
        fn l4(p) { l5(p); return 0; }
        fn l3(p) { l4(p); return 0; }
        fn l2(p) { l3(p); return 0; }
        fn l1(p) { l2(p); return 0; }
        fn main() { p = malloc(); l1(p); x = *p; return x; }
        """
    )
    assert len(result) == 1
    assert result.reports[0].source.function == "l5"


def test_five_level_return_chain():
    result = check_uaf(
        """
        fn m5() { p = malloc(); free(p); return p; }
        fn m4() { r = m5(); return r; }
        fn m3() { r = m4(); return r; }
        fn m2() { r = m3(); return r; }
        fn m1() { r = m2(); return r; }
        fn main() { q = m1(); x = *q; return x; }
        """
    )
    assert len(result) == 1
    assert result.reports[0].source.function == "m5"


def test_sink_deep_in_callee_chain():
    result = check_uaf(
        """
        fn d3(p) { x = *p; return x; }
        fn d2(p) { r = d3(p); return r; }
        fn d1(p) { r = d2(p); return r; }
        fn main() { p = malloc(); free(p); y = d1(p); return y; }
        """
    )
    assert len(result) == 1
    assert result.reports[0].sink.function == "d3"


def test_depth_bound_cuts_chain():
    # A chain deeper than the context bound is (soundily) dropped.
    config = EngineConfig(max_call_depth=2)
    result = check_uaf(
        """
        fn l5(p) { free(p); return 0; }
        fn l4(p) { l5(p); return 0; }
        fn l3(p) { l4(p); return 0; }
        fn l2(p) { l3(p); return 0; }
        fn l1(p) { l2(p); return 0; }
        fn main() { p = malloc(); l1(p); x = *p; return x; }
        """,
        config,
    )
    # The VF3 lift itself is depth-1 per level, so the bug is still found
    # (summaries compose level by level); what the bound limits is
    # constraint cloning depth.  The report must still exist.
    assert len(result) == 1


# ----------------------------------------------------------------------
# Connector flows (side effects through parameters)
# ----------------------------------------------------------------------
def test_freed_pointer_stored_through_param():
    # The callee stores a freed pointer into caller-visible memory.
    result = check_uaf(
        """
        fn poison(slot) {
            p = malloc();
            free(p);
            *slot = p;
            return 0;
        }
        fn main() {
            slot = malloc();
            poison(slot);
            q = *slot;
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 1
    assert result.reports[0].source.function == "poison"


def test_value_reads_through_param_depth2():
    result = check_uaf(
        """
        fn deref2(h) { q = **h; x = *q; return x; }
        fn main() {
            holder = malloc();
            inner = malloc();
            p = malloc();
            *holder = inner;
            *inner = p;
            free(p);
            y = deref2(holder);
            return y;
        }
        """
    )
    assert len(result) >= 1


def test_callee_overwrites_memory_breaks_flow():
    # The callee strongly updates the slot with a fresh value: the freed
    # pointer never comes back out.
    result = check_uaf(
        """
        fn scrub(slot) {
            fresh = malloc();
            *slot = fresh;
            return 0;
        }
        fn main() {
            slot = malloc();
            p = malloc();
            *slot = p;
            free(p);
            scrub(slot);
            q = *slot;
            x = *q;
            return x;
        }
        """
    )
    assert len(result) == 0


# ----------------------------------------------------------------------
# Context sensitivity
# ----------------------------------------------------------------------
def test_contexts_do_not_bleed():
    # Two call sites of the same identity function: only the freed one
    # is dangerous.  Context-insensitive merging would report both.
    result = check_uaf(
        """
        fn id(v) { return v; }
        fn main() {
            p = malloc();
            q = malloc();
            free(p);
            a = id(p);
            b = id(q);
            x = *b;
            y = *a;
            return x + y;
        }
        """
    )
    sinks = {r.sink.variable for r in result}
    assert len(result) == 1
    assert any("a" in s for s in sinks)


def test_conditional_free_in_callee_condition_respected():
    # The callee frees only under a flag; caller passes a constant that
    # contradicts the flag.
    result = check_uaf(
        """
        fn maybe_free(p, flag) {
            if (flag > 0) { free(p); }
            return 0;
        }
        fn main() {
            p = malloc();
            maybe_free(p, 0);
            x = *p;
            return x;
        }
        """
    )
    assert len(result) == 0, [str(r) for r in result]


def test_conditional_free_in_callee_triggers():
    result = check_uaf(
        """
        fn maybe_free(p, flag) {
            if (flag > 0) { free(p); }
            return 0;
        }
        fn main() {
            p = malloc();
            maybe_free(p, 1);
            x = *p;
            return x;
        }
        """
    )
    assert len(result) == 1


# ----------------------------------------------------------------------
# Recursion and externals
# ----------------------------------------------------------------------
def test_recursive_free_still_found_locally():
    result = check_uaf(
        """
        fn walk(p, n) {
            if (n > 0) { walk(p, n - 1); }
            free(p);
            x = *p;
            return x;
        }
        """
    )
    assert len(result) == 1


def test_external_call_does_not_crash_or_report():
    result = check_uaf(
        """
        fn main() {
            p = malloc();
            mystery(p);
            x = *p;
            return x;
        }
        """
    )
    assert len(result) == 0  # soundy: externals assumed effect-free


def test_null_arg_to_connector_callee():
    # Passing null where the callee expects a pointer must not crash the
    # connector transformation.
    result = check_uaf(
        """
        fn writer(slot, v) { *slot = v; return 0; }
        fn main(v) {
            writer(null, v);
            return 0;
        }
        """
    )
    assert len(result) == 0


# ----------------------------------------------------------------------
# Null-deref checker path sensitivity
# ----------------------------------------------------------------------
def test_null_deref_guarded_is_clean():
    result = Pinpoint.from_source(
        """
        fn main(c) {
            p = null;
            t = c > 0;
            if (t) { p = malloc(); }
            if (t) { x = *p; return x; }
            return 0;
        }
        """
    ).check(NullDereferenceChecker())
    assert len(result) == 0


def test_null_deref_unguarded_reported():
    result = Pinpoint.from_source(
        """
        fn main(c) {
            p = null;
            if (c > 0) { p = malloc(); }
            x = *p;
            return x;
        }
        """
    ).check(NullDereferenceChecker())
    assert len(result) == 1


# ----------------------------------------------------------------------
# Double free subtleties
# ----------------------------------------------------------------------
def test_double_free_through_two_helpers():
    result = Pinpoint.from_source(
        """
        fn f1(p) { free(p); return 0; }
        fn f2(p) { free(p); return 0; }
        fn main() {
            p = malloc();
            f1(p);
            f2(p);
            return 0;
        }
        """
    ).check(DoubleFreeChecker())
    assert len(result) >= 1


def test_conditional_double_free_exclusive_branches_clean():
    result = Pinpoint.from_source(
        """
        fn main(c) {
            p = malloc();
            t = c > 0;
            if (t) { free(p); }
            if (!t) { free(p); }
            return 0;
        }
        """
    ).check(DoubleFreeChecker())
    assert len(result) == 0


def test_loop_free_reported_soundy():
    # Freeing inside a loop that may run twice is a double free; with
    # unroll-once the engine cannot prove it, but freeing then looping
    # back is the classic case — ensure no crash and soundy behavior.
    result = Pinpoint.from_source(
        """
        fn main(n) {
            p = malloc();
            i = 0;
            while (i < n) {
                free(p);
                i = i + 1;
            }
            return 0;
        }
        """
    ).check(DoubleFreeChecker())
    # Unroll-once: the second iteration is invisible; no report expected,
    # and definitely no crash.
    assert len(result) <= 1


# ----------------------------------------------------------------------
# Engine robustness
# ----------------------------------------------------------------------
def test_empty_program():
    result = check_uaf("fn main() { return 0; }")
    assert len(result) == 0


def test_many_reports_deduplicated():
    result = check_uaf(
        """
        fn main() {
            p = malloc();
            q = p;
            free(p);
            x = *p;
            y = *q;
            z = *p;
            return x + y + z;
        }
        """
    )
    # Three deref sites, two distinct sink statements on p plus one on q;
    # duplicates by (source, sink) are collapsed.
    assert 2 <= len(result) <= 3


def test_checker_reuse_same_engine():
    engine = Pinpoint.from_source(
        "fn main() { p = malloc(); free(p); x = *p; return x; }"
    )
    first = engine.check(UseAfterFreeChecker())
    second = engine.check(UseAfterFreeChecker())
    assert len(first) == len(second) == 1
