"""Mutation tests for the self-verification layer.

For every verifier rule: start from a well-formed module, corrupt the
IR/SEG/signature/summary in exactly the way the rule exists to catch,
and assert that the rule — and *only* that rule — fires.  The baseline
test pins down the other half of the contract: on untouched artifacts
nothing fires at all.
"""

import pytest

from repro.core.engine import PinpointFunction
from repro.core.pipeline import prepare_source
from repro.core.summaries import FunctionSummaries, RVSummary, VFSummary
from repro.ir import cfg
from repro.seg.builder import build_seg
from repro.seg.conditions import TRUE_CONSTRAINT, Constraint
from repro.verify import (
    RULES,
    lint_summaries,
    verify_call_interfaces,
    verify_function_ir,
    verify_seg,
)

# A small module exercising every artifact the verifiers look at:
# a callee with memory side effects (Aux returns, connector-transformed
# call site in main) and a branch join (phi, gates, control deps).
SOURCE = """
fn callee(p) {
    *p = 1;
    free(p);
    return 0;
}

fn main(a) {
    if (a > 3) { x = 1; } else { x = 2; }
    q = malloc();
    r = callee(q);
    return x;
}
"""


def build():
    module = prepare_source(SOURCE)
    segs = {name: build_seg(module[name]) for name in module.order}
    return module, segs


def fired(module, segs):
    """Union of rule ids from all three verifiers over the whole module."""
    rules = set()
    for pf in module:
        for violation in verify_function_ir(
            pf.function, pf.control_deps, dom=pf.gates.dom
        ):
            rules.add(violation.rule)
    for name, seg in segs.items():
        for violation in verify_seg(seg, module[name]):
            rules.add(violation.rule)
    for violation in verify_call_interfaces(module):
        rules.add(violation.rule)
    return rules


def find_instr(function, kind, predicate=lambda i: True):
    for instr in function.all_instrs():
        if isinstance(instr, kind) and predicate(instr):
            return instr
    raise AssertionError(f"no {kind.__name__} in {function.name}")


# ----------------------------------------------------------------------
# Baseline: a well-formed module trips nothing.
# ----------------------------------------------------------------------
def test_well_formed_module_fires_no_rules():
    module, segs = build()
    assert fired(module, segs) == set()


def test_every_rule_is_registered():
    # Keep the rule table honest: each mutation below names a real rule.
    for rule_id in (
        "ir-entry",
        "ir-terminator",
        "ir-edge-symmetry",
        "ssa-single-def",
        "ssa-dominance",
        "phi-arity",
        "cd-branch",
        "seg-dangling-edge",
        "seg-index-symmetry",
        "seg-def-unresolved",
        "seg-use-anchor",
        "seg-gate-condition",
        "aux-pairing",
        "call-aux-pairing",
        "summary-interface",
        "summary-slot",
        "summary-coherence",
    ):
        assert rule_id in RULES


# ----------------------------------------------------------------------
# IR rules
# ----------------------------------------------------------------------
def test_mutation_ir_entry():
    module, segs = build()
    module["main"].function.entry = "nosuch"
    assert fired(module, segs) == {"ir-entry"}


def test_mutation_ir_terminator():
    module, segs = build()
    function = module["main"].function
    ret_block = next(
        block
        for block in function.blocks.values()
        if isinstance(block.terminator, cfg.Ret)
    )
    ret_block.terminator = None
    assert fired(module, segs) == {"ir-terminator"}


def test_mutation_ir_edge_symmetry():
    module, segs = build()
    function = module["main"].function
    function.blocks[function.entry].succs.append("ghost")
    assert fired(module, segs) == {"ir-edge-symmetry"}


def test_mutation_ssa_single_def():
    module, segs = build()
    function = module["main"].function
    assign = find_instr(function, cfg.Assign)
    for block in function.blocks.values():
        if assign in block.instrs:
            block.instrs.append(assign)
            break
    assert fired(module, segs) == {"ssa-single-def"}


def test_mutation_ssa_dominance():
    module, segs = build()
    function = module["main"].function

    def def_block(var):
        for label, block in function.blocks.items():
            for instr in block.all_instrs():
                if instr.defined_var() == var:
                    return label
        return None

    # The x-join phi: swap one operand for the variable defined in the
    # *other* arm, whose definition cannot dominate this predecessor.
    phi = find_instr(
        function,
        cfg.Phi,
        lambda i: len(i.incomings) == 2
        and all(isinstance(op, cfg.Var) for _, op in i.incomings)
        and len({def_block(op.name) for _, op in i.incomings}) == 2,
    )
    (pred_a, _op_a), (_pred_b, op_b) = phi.incomings
    phi.incomings[0] = (pred_a, op_b)
    assert fired(module, segs) == {"ssa-dominance"}


def test_mutation_phi_arity():
    module, segs = build()
    function = module["main"].function
    phi = find_instr(function, cfg.Phi)
    phi.incomings.append((function.entry, cfg.Const(0)))
    assert fired(module, segs) == {"phi-arity"}


def test_mutation_cd_branch():
    module, segs = build()
    prepared = module["main"]
    ret_label = next(
        label
        for label, block in prepared.function.blocks.items()
        if isinstance(block.terminator, cfg.Ret)
    )
    # Claim a block is control-dependent on the return block, which has
    # no Branch terminator.
    prepared.control_deps.setdefault(ret_label, []).append((ret_label, True))
    assert fired(module, segs) == {"cd-branch"}


# ----------------------------------------------------------------------
# SEG rules
# ----------------------------------------------------------------------
def test_mutation_seg_dangling_edge():
    module, segs = build()
    seg = segs["main"]
    edge = next(iter(edges[0] for edges in seg.out_edges.values() if edges))
    seg.vertices.discard(edge.src)
    assert fired(module, segs) == {"seg-dangling-edge"}


def test_mutation_seg_index_symmetry():
    module, segs = build()
    seg = segs["main"]
    dst, edges = next(
        (dst, edges) for dst, edges in seg.in_edges.items() if edges
    )
    edges.pop()
    assert fired(module, segs) == {"seg-index-symmetry"}


def test_mutation_seg_def_unresolved():
    module, segs = build()
    segs["main"].vertices.add(("def", "ghost.7"))
    assert fired(module, segs) == {"seg-def-unresolved"}


def test_mutation_seg_use_anchor():
    module, segs = build()
    segs["main"].vertices.add(("use", "ghost.7", 999999999))
    assert fired(module, segs) == {"seg-use-anchor"}


def test_mutation_seg_gate_condition():
    module, segs = build()
    seg = segs["main"]
    uid = next(iter(seg.control), None)
    if uid is None:  # pragma: no cover - main always has gated statements
        uid = next(iter(seg.instr_by_uid))
    seg.control.setdefault(uid, []).append(("ghost.9", True))
    assert fired(module, segs) == {"seg-gate-condition"}


def test_mutation_aux_pairing():
    module, segs = build()
    # Corrupt the *signature* side of the Fig. 3 contract; the function
    # body stays intact, so only the pairing check can notice.
    module["callee"].signature.aux_params.append(("ghost", 1))
    assert fired(module, segs) == {"aux-pairing"}


def test_mutation_call_aux_pairing():
    module, segs = build()
    call = find_instr(
        module["main"].function, cfg.Call, lambda i: i.callee == "callee"
    )
    assert call.extra_receivers, "connector transform should add receivers"
    call.extra_receivers.append("ghost_recv.1")
    assert fired(module, segs) == {"call-aux-pairing"}


# ----------------------------------------------------------------------
# Summary lints
# ----------------------------------------------------------------------
def lint(summaries):
    module, _segs = build()
    pf = PinpointFunction(module["callee"])
    return {violation.rule for violation in lint_summaries(summaries, pf)}


def test_mutation_summary_interface():
    summaries = FunctionSummaries(function="callee")
    summaries.rv[0] = RVSummary(
        function="callee",
        slot=0,
        value=cfg.Const(0),
        constraint=Constraint(TRUE_CONSTRAINT.term, frozenset({"stranger.3"})),
    )
    assert lint(summaries) == {"summary-interface"}


def test_mutation_summary_slot():
    summaries = FunctionSummaries(function="callee")
    summaries.vf4.append(
        VFSummary(
            kind="vf4",
            function="callee",
            path=(),
            constraint=TRUE_CONSTRAINT,
            param_slot=99,
        )
    )
    assert lint(summaries) == {"summary-slot"}


def test_mutation_summary_coherence():
    summaries = FunctionSummaries(function="callee")
    summaries.vf1.append(
        VFSummary(
            kind="vf1",
            function="callee",
            path=(("def", "phantom.5"),),
            constraint=TRUE_CONSTRAINT,
            param_slot=0,
            ret_slot=0,
        )
    )
    assert lint(summaries) == {"summary-coherence"}
